//! Schedule-explorer suite: seeded concurrency bugs in instrumented
//! fixtures must be found, reported with a replay handle, and re-found
//! from that handle alone.

use qse_check::{Ctl, Explorer};
use qse_util::mailbox::unbounded;
use qse_util::sync::{sync_point, SyncOp};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::Duration;

/// Two workers perform a read-modify-write on a shared counter with a
/// decision point between the read and the write — the textbook lost
/// update. A mailbox coordinates completion so the checking thread
/// (participant 0) only asserts after both increments "happened".
fn lost_update_fixture(ctl: &Ctl) {
    let (tx, rx) = unbounded::<()>();
    let counter = Arc::new(AtomicUsize::new(0));
    for _ in 0..2 {
        let counter = Arc::clone(&counter);
        let tx = tx.clone();
        ctl.spawn(move || {
            let v = counter.load(Ordering::SeqCst);
            sync_point(SyncOp::User("between load and store"));
            counter.store(v + 1, Ordering::SeqCst);
            let _ = tx.send(());
        });
    }
    drop(tx);
    for _ in 0..2 {
        rx.recv_timeout(Duration::from_secs(5)).expect("worker done");
    }
    assert_eq!(
        counter.load(Ordering::SeqCst),
        2,
        "lost update: one increment overwrote the other"
    );
}

/// The same protocol with an atomic read-modify-write: correct under
/// every interleaving.
fn atomic_update_fixture(ctl: &Ctl) {
    let (tx, rx) = unbounded::<()>();
    let counter = Arc::new(AtomicUsize::new(0));
    for _ in 0..2 {
        let counter = Arc::clone(&counter);
        let tx = tx.clone();
        ctl.spawn(move || {
            counter.fetch_add(1, Ordering::SeqCst);
            sync_point(SyncOp::User("after increment"));
            let _ = tx.send(());
        });
    }
    drop(tx);
    for _ in 0..2 {
        rx.recv_timeout(Duration::from_secs(5)).expect("worker done");
    }
    assert_eq!(counter.load(Ordering::SeqCst), 2);
}

#[test]
fn exhaustive_exploration_finds_the_lost_update() {
    let err = Explorer::exhaustive()
        .explore(lost_update_fixture)
        .expect_err("the racy counter must fail under some schedule");
    assert!(
        err.message.contains("lost update"),
        "failure is the fixture's own assertion: {}",
        err.message
    );
    assert!(err.schedules > 1, "schedule 0 (no preemptions) passes");
    // The printed failure carries a script; replaying it reproduces the
    // exact same assertion without searching.
    let replayed = Explorer::exhaustive()
        .replay(err.script.clone(), lost_update_fixture)
        .expect("replay must reproduce the failure");
    assert!(replayed.contains("lost update"));
}

#[test]
fn exhaustive_exploration_passes_the_atomic_protocol() {
    let schedules = Explorer::exhaustive()
        .explore(atomic_update_fixture)
        .expect("atomic increments are correct under every schedule");
    assert!(
        schedules > 10,
        "expected a real search space, explored only {schedules}"
    );
}

/// A mailbox wakeup-order bug for random-mode exploration: a producer
/// sends to two channels in order, and the test wrongly assumes the
/// first channel's consumer always *runs* first. Four participants —
/// above the exhaustive threshold, so seeded random mode applies.
fn wakeup_order_fixture(ctl: &Ctl) {
    let (tx1, rx1) = unbounded::<u8>();
    let (tx2, rx2) = unbounded::<u8>();
    let (res_tx, res_rx) = unbounded::<(u8, usize)>();
    let seq = Arc::new(AtomicUsize::new(0));
    ctl.spawn(move || {
        let _ = tx1.send(1);
        let _ = tx2.send(2);
    });
    for (id, rx) in [(1u8, rx1), (2u8, rx2)] {
        let seq = Arc::clone(&seq);
        let res_tx = res_tx.clone();
        ctl.spawn(move || {
            rx.recv_timeout(Duration::from_secs(5)).expect("message");
            let order = seq.fetch_add(1, Ordering::SeqCst);
            let _ = res_tx.send((id, order));
        });
    }
    drop(res_tx);
    let mut order = [usize::MAX; 2];
    for _ in 0..2 {
        let (id, o) = res_rx.recv_timeout(Duration::from_secs(5)).expect("result");
        order[(id - 1) as usize] = o;
    }
    assert!(
        order[0] < order[1],
        "wakeup order: consumer 2 ran before consumer 1"
    );
}

const BASE_SEED: u64 = 1;
const ITERATIONS: usize = 300;

#[test]
fn random_exploration_finds_the_wakeup_order_bug_and_replays_from_seed() {
    let err = Explorer::random(BASE_SEED, ITERATIONS)
        .explore(wakeup_order_fixture)
        .expect_err("some schedule wakes consumer 2 first");
    assert!(err.message.contains("wakeup order"), "{}", err.message);
    let seed = err.seed.expect("random mode reports the failing seed");
    assert!(err.to_string().contains(&format!("replay with seed {seed}")));

    // The printed seed alone re-finds the bug on its first schedule.
    let again = Explorer::random(seed, 1)
        .explore(wakeup_order_fixture)
        .expect_err("replay from the printed seed");
    assert_eq!(again.schedules, 1);
    assert!(again.message.contains("wakeup order"));
    assert_eq!(again.seed, Some(seed));
}

/// `wait_any` under every wakeup order: a producer sends three chunks
/// tagged out of order while the consumer drains them with repeated
/// `wait_any` calls — whatever interleaving the explorer picks, every
/// chunk must complete exactly once with its own payload. This is the
/// completion-order contract the streamed exchange pipeline builds on.
fn wait_any_wakeup_fixture(ctl: &Ctl) {
    use qse_comm::Universe;
    let mut comms = Universe::new(2).into_communicators().into_iter();
    let mut consumer = comms.next().expect("rank 0");
    let mut producer = comms.next().expect("rank 1");
    ctl.spawn(move || {
        for tag in [2u64, 0, 1] {
            producer.send(0, tag, &[tag as u8]).expect("send chunk");
        }
    });
    let mut reqs: Vec<_> = (0..3u64)
        .map(|t| consumer.irecv(1, t).expect("post receive"))
        .collect();
    let mut tags: Vec<u64> = (0..3).collect();
    let mut seen = [false; 3];
    while !reqs.is_empty() {
        let (i, payload) = consumer.wait_any(&reqs).expect("wait_any");
        let tag = tags[i] as usize;
        reqs.swap_remove(i);
        tags.swap_remove(i);
        assert_eq!(payload[0] as usize, tag, "payload follows its tag");
        assert!(!seen[tag], "chunk {tag} completed twice");
        seen[tag] = true;
    }
    assert!(seen.iter().all(|&s| s), "every chunk completed: {seen:?}");
}

#[test]
fn wait_any_completes_every_chunk_under_all_schedules() {
    let schedules = Explorer::exhaustive()
        .explore(wait_any_wakeup_fixture)
        .expect("wait_any must drain all chunks under every schedule");
    assert!(
        schedules > 1,
        "expected multiple interleavings, explored only {schedules}"
    );
}

#[test]
fn modelled_timeout_surfaces_never_sent_messages() {
    // A receive nobody will ever satisfy: instead of hanging or waiting
    // out a wall-clock deadline, the explorer models the timeout and the
    // fixture's expect() fails on every schedule — including the first.
    let err = Explorer::exhaustive()
        .explore(|_ctl: &Ctl| {
            let (_tx, rx) = unbounded::<u8>();
            rx.recv_timeout(Duration::from_secs(3600))
                .expect("this message never arrives");
        })
        .expect_err("must fail without waiting an hour");
    assert_eq!(err.schedules, 1);
    assert!(err.message.contains("never arrives"));
}
