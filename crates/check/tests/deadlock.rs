//! Intentional-deadlock suite: rank programs that can never complete
//! must fail *fast* with diagnostics naming the stuck ranks and what
//! they are waiting for — not with a generic receive timeout minutes
//! later. Drives the wait-for-graph detector in `qse_comm::deadlock`
//! through real `Universe` runs.

use qse_comm::{CommError, Universe};
use std::time::{Duration, Instant};

/// The detector polls every 25 ms; well under this budget.
const BUDGET: Duration = Duration::from_secs(2);

/// A long receive timeout so any failure we see comes from the
/// detector, never from the deadline.
const LONG: Duration = Duration::from_secs(300);

#[test]
fn mismatched_sendrecv_tags_fail_fast_naming_both_ranks() {
    let t0 = Instant::now();
    let out = Universe::with_timeout(4, LONG).run(|c| match c.rank() {
        // Ranks 0 and 1 exchange, but each waits for a tag the other
        // never sends: a classic tag-mismatch deadlock.
        0 => c.sendrecv(1, 10, b"ping", 1, 99).map(|_| ()),
        1 => c.sendrecv(0, 20, b"pong", 0, 88).map(|_| ()),
        // Ranks 2 and 3 finish immediately.
        _ => Ok(()),
    });
    assert!(
        t0.elapsed() < BUDGET,
        "deadlock took {:?} to surface",
        t0.elapsed()
    );
    for (rank, want_peer, want_tag) in [(0usize, 1usize, 99u64), (1, 0, 88)] {
        match &out[rank] {
            Err(CommError::Deadlock {
                rank: r,
                stuck,
                detail,
            }) => {
                assert_eq!(*r, rank);
                assert_eq!(stuck, &vec![0, 1], "both mismatched ranks named");
                let wait = format!("recv(src={want_peer}, tag={want_tag})");
                assert!(
                    detail.contains(&wait),
                    "rank {rank} detail must name its awaited (peer, tag): {detail}"
                );
            }
            other => panic!("rank {rank}: expected Deadlock, got {other:?}"),
        }
    }
    assert!(out[2].is_ok());
    assert!(out[3].is_ok());
}

#[test]
fn one_sided_exchange_reports_the_waiting_rank() {
    let t0 = Instant::now();
    let out = Universe::with_timeout(2, LONG).run(|c| {
        if c.rank() == 1 {
            // Waits for a message rank 0 never sends.
            c.recv(0, 7).map(|_| ())
        } else {
            Ok(())
        }
    });
    assert!(t0.elapsed() < BUDGET);
    assert!(out[0].is_ok());
    match &out[1] {
        Err(CommError::Deadlock { rank, stuck, detail }) => {
            assert_eq!(*rank, 1);
            assert_eq!(stuck, &vec![1]);
            assert!(detail.contains("recv(src=0, tag=7)"), "{detail}");
            assert!(detail.contains("finished"), "peer state shown: {detail}");
        }
        other => panic!("expected Deadlock, got {other:?}"),
    }
}

#[test]
fn three_rank_wait_cycle_is_named_in_full() {
    let t0 = Instant::now();
    let out = Universe::with_timeout(3, LONG).run(|c| {
        // rank r waits on rank r+1 (mod 3); nobody ever sends.
        let next = (c.rank() + 1) % 3;
        c.recv(next, 5).map(|_| ())
    });
    assert!(t0.elapsed() < BUDGET);
    for (rank, res) in out.iter().enumerate() {
        match res {
            Err(CommError::Deadlock { stuck, detail, .. }) => {
                assert_eq!(stuck, &vec![0, 1, 2], "whole cycle named");
                // Every rank's report shows each member and its wait.
                for r in 0..3usize {
                    assert!(detail.contains(&format!("rank {r}")), "{detail}");
                }
            }
            other => panic!("rank {rank}: expected Deadlock, got {other:?}"),
        }
    }
}

#[test]
fn buffered_but_unmatched_traffic_still_detected() {
    // Both ranks send a tag the peer is not waiting for: the messages
    // are delivered into pending buffers (so nothing is "in flight"),
    // yet neither recv can ever match — the detector must see through
    // the buffered traffic.
    let t0 = Instant::now();
    let out = Universe::with_timeout(2, LONG).run(|c| {
        let peer = 1 - c.rank();
        c.send(peer, 40 + c.rank() as u64, b"noise")?;
        c.recv(peer, 1234).map(|_| ())
    });
    assert!(t0.elapsed() < BUDGET);
    for res in &out {
        match res {
            Err(CommError::Deadlock { stuck, detail, .. }) => {
                assert_eq!(stuck, &vec![0, 1]);
                assert!(detail.contains("1 buffered"), "queue depth shown: {detail}");
            }
            other => panic!("expected Deadlock, got {other:?}"),
        }
    }
}

#[test]
fn wait_any_on_never_sent_chunks_fails_fast() {
    // The streamed exchange's blocked state: rank 0 posts receives for
    // two chunks and parks in `wait_any`; rank 1 finishes without
    // sending. The detector must diagnose the RecvAny wait, fast, and
    // the report must name the wait_any state with its outstanding
    // count.
    let t0 = Instant::now();
    let out = Universe::with_timeout(2, LONG).run(|c| {
        if c.rank() == 0 {
            let r1 = c.irecv(1, 5)?;
            let r2 = c.irecv(1, 6)?;
            c.wait_any(&[r1, r2]).map(|_| ())
        } else {
            Ok(())
        }
    });
    assert!(
        t0.elapsed() < BUDGET,
        "wait_any deadlock took {:?} to surface",
        t0.elapsed()
    );
    assert!(out[1].is_ok());
    match &out[0] {
        Err(CommError::Deadlock { rank, stuck, detail }) => {
            assert_eq!(*rank, 0);
            assert_eq!(stuck, &vec![0]);
            assert!(detail.contains("wait_any"), "{detail}");
            assert!(detail.contains("2 outstanding"), "{detail}");
            assert!(detail.contains("finished"), "peer state shown: {detail}");
        }
        other => panic!("expected Deadlock, got {other:?}"),
    }
}

#[test]
fn retrying_and_delayed_ranks_are_not_misreported() {
    // False-positive guard for the fault-injection layer: every message
    // is delayed (held invisible at the receiver) and most sends need
    // backoff retries, so both ranks spend most of their time waiting on
    // traffic that exists but is not yet visible. The detector must stay
    // silent — held envelopes count as in flight — and every round must
    // deliver the exact payload.
    let mut plan = qse_comm::FaultConfig::recoverable(21);
    plan.p_delay = 1.0;
    plan.max_delay_slices = 2;
    plan.p_send_fail = 0.8;
    let out = Universe::with_timeout_and_faults(2, LONG, plan)
        .expect("valid plan")
        .run(|c| {
            let peer = 1 - c.rank();
            for round in 0..6u64 {
                let sent = [c.rank() as u8, round as u8];
                let got = c.sendrecv(peer, round, &sent, peer, round)?;
                assert_eq!(&got[..], &[peer as u8, round as u8]);
            }
            Ok::<_, CommError>(())
        });
    for (rank, r) in out.into_iter().enumerate() {
        r.unwrap_or_else(|e| panic!("rank {rank} falsely failed: {e}"));
    }
}

#[test]
fn real_deadlocks_still_fire_under_an_active_fault_lane() {
    // The fault lane swaps the receive loop onto a modelled slice clock;
    // a genuine one-sided wait must still be diagnosed by the wait-for
    // graph, fast, not ride the (huge) modelled deadline.
    let t0 = Instant::now();
    let out = Universe::with_timeout_and_faults(2, LONG, qse_comm::FaultConfig::recoverable(4))
        .expect("valid plan")
        .run(|c| {
            if c.rank() == 1 {
                c.recv(0, 7).map(|_| ())
            } else {
                Ok(())
            }
        });
    assert!(
        t0.elapsed() < BUDGET,
        "deadlock under faults took {:?} to surface",
        t0.elapsed()
    );
    assert!(out[0].is_ok());
    match &out[1] {
        Err(CommError::Deadlock { rank, stuck, .. }) => {
            assert_eq!(*rank, 1);
            assert_eq!(stuck, &vec![1]);
        }
        other => panic!("expected Deadlock, got {other:?}"),
    }
}

#[test]
fn healthy_exchange_is_not_flagged() {
    // The false-positive guard: a slow but live exchange (receiver
    // starts waiting before the sender sends) must complete normally.
    let out = Universe::with_timeout(2, LONG).run(|c| {
        if c.rank() == 0 {
            c.recv(1, 3).map(|b| b.len())
        } else {
            std::thread::sleep(Duration::from_millis(120));
            c.send(0, 3, &[1, 2, 3]).map(|_| 0)
        }
    });
    assert_eq!(*out[0].as_ref().unwrap(), 3);
    assert!(out[1].is_ok());
}
