//! The lint self-test: the repo's own tree must be clean, and the rules
//! must actually bite on seeded fixtures (a linter that passes
//! everything also "passes" the tree).

use qse_check::lint::{find_workspace_root, lint_tree};
use std::path::Path;

fn workspace_root() -> std::path::PathBuf {
    let here = Path::new(env!("CARGO_MANIFEST_DIR"));
    find_workspace_root(here).expect("workspace root above crates/check")
}

#[test]
fn the_tree_is_lint_clean() {
    let violations = lint_tree(&workspace_root()).expect("tree readable");
    assert!(
        violations.is_empty(),
        "lint violations in the tree:\n{}",
        violations
            .iter()
            .map(|v| v.to_string())
            .collect::<Vec<_>>()
            .join("\n")
    );
}

#[test]
fn the_linter_bites_on_a_seeded_unwrap() {
    // Guard against a silently over-permissive scanner: re-lint a real
    // library file with an injected unwrap and require a finding.
    let root = workspace_root();
    let path = root.join("crates/comm/src/universe.rs");
    let mut content = std::fs::read_to_string(&path).expect("readable");
    assert!(
        qse_check::lint_file("crates/comm/src/universe.rs", &content).is_empty(),
        "baseline file must be clean"
    );
    content.push_str("\nfn seeded() -> usize { None::<usize>.unwrap() }\n");
    let v = qse_check::lint_file("crates/comm/src/universe.rs", &content);
    assert_eq!(v.len(), 1, "{v:?}");
    assert_eq!(v[0].rule, qse_check::Rule::PanicInLib);
}

#[test]
fn the_linter_bites_on_a_seeded_uncommented_unsafe() {
    // R5 guard: each real unsafe-bearing file must be clean today, and an
    // `unsafe` seeded without a SAFETY comment must be caught in each.
    let root = workspace_root();
    for rel in [
        "crates/statevec/src/storage/soa.rs",
        "crates/statevec/src/storage/aos.rs",
        "crates/util/src/parallel.rs",
    ] {
        let content = std::fs::read_to_string(root.join(rel)).expect("readable");
        assert!(
            qse_check::lint_file(rel, &content).is_empty(),
            "baseline {rel} must be clean"
        );
        let seeded =
            format!("{content}\nfn seeded(p: *const u8) -> u8 {{\n    unsafe {{ *p }}\n}}\n");
        let v = qse_check::lint_file(rel, &seeded);
        assert_eq!(v.len(), 1, "{rel}: {v:?}");
        assert_eq!(v[0].rule, qse_check::Rule::UnsafeWithoutSafety, "{rel}");
    }
}

#[test]
fn the_linter_bites_on_a_seeded_truncating_cast() {
    // R6 guard: comm and statevec library files must be cast-clean, and
    // a seeded `u64 → usize` index cast must be caught.
    let root = workspace_root();
    for rel in ["crates/comm/src/universe.rs", "crates/statevec/src/dist.rs"] {
        let content = std::fs::read_to_string(root.join(rel)).expect("readable");
        assert!(
            qse_check::lint_file(rel, &content).is_empty(),
            "baseline {rel} must be clean"
        );
        let seeded = format!("{content}\nfn seeded(i: u64) -> usize {{\n    i as usize\n}}\n");
        let v = qse_check::lint_file(rel, &seeded);
        assert_eq!(v.len(), 1, "{rel}: {v:?}");
        assert_eq!(v[0].rule, qse_check::Rule::TruncatingCast, "{rel}");
    }
    // And an `as u32` in comm is equally caught.
    let v = qse_check::lint_file(
        "crates/comm/src/faults.rs",
        "fn seeded(i: u64) -> u32 { i as u32 }\n",
    );
    assert_eq!(v.len(), 1, "{v:?}");
    assert_eq!(v[0].rule, qse_check::Rule::TruncatingCast);
}

#[test]
fn the_linter_bites_on_a_seeded_measure_assert() {
    // Same guard for R4: the real measure.rs must be clean, and an
    // `assert!`-as-error-handling seeded into it must be caught. This is
    // exactly the pattern the pre-fix `collapse` used.
    let root = workspace_root();
    let path = root.join("crates/statevec/src/measure.rs");
    let content = std::fs::read_to_string(&path).expect("readable");
    assert!(
        qse_check::lint_file("crates/statevec/src/measure.rs", &content).is_empty(),
        "baseline measure.rs must be clean"
    );
    let seeded = format!(
        "{content}\nfn seeded(p: f64) {{\n    \
         assert!(p > 1e-15, \"collapsing onto a zero-probability outcome\");\n}}\n"
    );
    let v = qse_check::lint_file("crates/statevec/src/measure.rs", &seeded);
    assert_eq!(v.len(), 1, "{v:?}");
    assert_eq!(v[0].rule, qse_check::Rule::AssertInMeasure);
    // The same seed outside a measure path is legitimate invariant
    // checking and stays clean.
    assert!(qse_check::lint_file(
        "crates/statevec/src/single.rs",
        "fn seeded(p: f64) { assert!(p > 1e-15); }\n"
    )
    .is_empty());
}
