//! In-tree analysis tooling for the simulator's concurrency substrate.
//!
//! Three engines, each aimed at a class of bug the ordinary test suite
//! can miss:
//!
//! * [`schedule`] — a mini-loom: a bounded-preemption interleaving
//!   explorer that drives instrumented code (the mailbox channels and
//!   worker pool of `qse-util`) through a controlled scheduler. Small
//!   fixtures are explored exhaustively; larger ones with seeded random
//!   schedules, and any failing schedule replays from its printed seed.
//! * runtime deadlock detection — lives in [`qse_comm::deadlock`]; the
//!   integration tests in this crate drive intentionally deadlocking
//!   rank programs and assert the per-rank diagnostics.
//! * [`lint`] — a source scanner enforcing the repo's error-handling
//!   and determinism conventions (no `unwrap`/`expect`/`panic!` in
//!   library code of the communication and kernel crates, no wall-clock
//!   reads in the analytic model, documented public API in `qse-comm`),
//!   run as a tier-1 test and exposed as the `qse-lint` binary.

pub mod lint;
pub mod schedule;

pub use lint::{lint_file, lint_tree, Rule, Violation};
pub use schedule::{Ctl, Explorer, ScheduleFailure};
