//! In-tree analysis tooling for the simulator's concurrency substrate.
//!
//! Three engines, each aimed at a class of bug the ordinary test suite
//! can miss:
//!
//! * [`schedule`] — a mini-loom: a bounded-preemption interleaving
//!   explorer that drives instrumented code (the mailbox channels and
//!   worker pool of `qse-util`) through a controlled scheduler. Small
//!   fixtures are explored exhaustively; larger ones with seeded random
//!   schedules, and any failing schedule replays from its printed seed.
//! * runtime deadlock detection — lives in [`qse_comm::deadlock`]; the
//!   integration tests in this crate drive intentionally deadlocking
//!   rank programs and assert the per-rank diagnostics.
//! * [`lint`] — a source scanner enforcing the repo's error-handling
//!   and determinism conventions (no `unwrap`/`expect`/`panic!` in
//!   library code of the communication and kernel crates, no wall-clock
//!   reads in the analytic model, documented public API in `qse-comm`,
//!   `// SAFETY:` comments on every `unsafe` block in the kernel and
//!   thread-pool crates, no truncating index casts in comm/statevec),
//!   run as a tier-1 test and exposed as the `qse-lint` binary.
//! * [`verify`] — a static plan & protocol verifier: abstractly
//!   interprets compiled execution plans (fused schedules, transpiled
//!   `Permute` steps, all three exchange modes), derives each rank's
//!   symbolic communication trace without executing anything, and proves
//!   protocol matching, deadlock freedom, buffer bounds, and layout
//!   soundness; [`corpus`] generates the standard plan corpus that
//!   `qse check --plans` and CI sweep.

pub mod corpus;
pub mod lint;
pub mod schedule;
pub mod verify;

pub use corpus::{standard_corpus, CorpusCase};
pub use lint::{lint_file, lint_tree, Rule, Violation};
pub use schedule::{Ctl, Explorer, ScheduleFailure};
pub use verify::{
    derive_traces, verify_circuit, verify_plan, TraceSet, VerifyError, VerifyOptions, VerifyReport,
};
