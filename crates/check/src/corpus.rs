//! The standard plan corpus swept by `qse check --plans` and CI: QFT,
//! cache-blocked QFT, and random circuits × rank counts × exchange
//! modes × transpile strategies, each paired with the [`VerifyOptions`]
//! the runtime would use, ready for [`crate::verify::verify_plan`].

use crate::verify::VerifyOptions;
use qse_circuit::classify::Layout;
use qse_circuit::qft::{cache_blocked_qft, default_split, qft};
use qse_circuit::random::{random_circuit, GatePool};
use qse_circuit::transpile::{comm_avoid, ByteOracle, Plan, Strategy};
use qse_circuit::{Circuit, Permutation};
use qse_comm::chunking::{ChunkPolicy, ExchangeMode};

/// One corpus entry: a compiled plan, the circuit it was compiled from,
/// and the execution configuration to verify it under.
#[derive(Debug, Clone)]
pub struct CorpusCase {
    /// Human-readable case name, e.g. `qft8/R4/streamed/beam`.
    pub name: String,
    pub plan: Plan,
    pub original: Circuit,
    pub n_ranks: u64,
    pub opts: VerifyOptions,
}

fn strategy_name(s: Option<Strategy>) -> &'static str {
    match s {
        None => "off",
        Some(Strategy::Greedy) => "greedy",
        Some(Strategy::Beam { .. }) => "beam",
        Some(Strategy::Exhaustive { .. }) => "exhaustive",
    }
}

fn mode_name(m: ExchangeMode) -> &'static str {
    match m {
        ExchangeMode::Blocking => "blocking",
        ExchangeMode::NonBlocking => "nonblocking",
        ExchangeMode::Streamed => "streamed",
    }
}

/// Builds the standard corpus: 6 circuits × R ∈ {1, 2, 4, 8} ×
/// 3 exchange modes × transpile off/greedy/beam = 216 plans. Cases
/// alternate half-exchange SWAPs and a small chunk cap so multi-chunk
/// and half-exchange lowering stay covered.
pub fn standard_corpus() -> Vec<CorpusCase> {
    let circuits: Vec<(String, Circuit)> = vec![
        ("qft6".into(), qft(6)),
        ("qft8".into(), qft(8)),
        ("cbqft8".into(), cache_blocked_qft(8, default_split(8, 5))),
        ("rand7s1".into(), random_circuit(7, 40, GatePool::Full, 1)),
        ("rand7s2".into(), random_circuit(7, 40, GatePool::Full, 2)),
        ("rand8s3".into(), random_circuit(8, 48, GatePool::Full, 3)),
    ];
    let strategies = [None, Some(Strategy::Greedy), Some(Strategy::beam())];
    let modes = [
        ExchangeMode::Blocking,
        ExchangeMode::NonBlocking,
        ExchangeMode::Streamed,
    ];
    let mut cases = Vec::new();
    for (cname, circuit) in &circuits {
        for &ranks in &[1u64, 2, 4, 8] {
            for &strategy in &strategies {
                let plan = match strategy {
                    None => {
                        Plan::from_circuit(circuit, Permutation::identity(circuit.n_qubits()))
                    }
                    Some(s) => {
                        let layout = Layout::new(circuit.n_qubits(), ranks);
                        comm_avoid(circuit, &layout, s, &ByteOracle).with_layout_restored()
                    }
                };
                for &mode in &modes {
                    let idx = cases.len();
                    let opts = VerifyOptions {
                        exchange_mode: mode,
                        // Alternate a small cap to force multi-chunk
                        // lowering on half the corpus.
                        chunk_policy: if idx % 2 == 0 {
                            ChunkPolicy {
                                max_message_bytes: 1 << 20,
                            }
                        } else {
                            ChunkPolicy {
                                max_message_bytes: 512,
                            }
                        },
                        half_exchange_swaps: idx % 3 == 0,
                        ..VerifyOptions::default()
                    };
                    cases.push(CorpusCase {
                        name: format!(
                            "{cname}/R{ranks}/{}/{}",
                            mode_name(mode),
                            strategy_name(strategy)
                        ),
                        plan: plan.clone(),
                        original: circuit.clone(),
                        n_ranks: ranks,
                        opts,
                    });
                }
            }
        }
    }
    cases
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::verify::verify_plan;

    #[test]
    fn the_standard_corpus_is_large_and_clean() {
        let cases = standard_corpus();
        assert!(cases.len() >= 200, "corpus has {} plans", cases.len());
        for case in &cases {
            verify_plan(&case.plan, Some(&case.original), case.n_ranks, &case.opts)
                .unwrap_or_else(|e| panic!("{} failed: {e}", case.name));
        }
    }
}
