//! `qse-lint` — runs the in-tree source lint over the workspace.
//!
//! ```sh
//! qse-lint              # lint the enclosing workspace
//! qse-lint --root PATH  # lint an explicit workspace root
//! ```
//!
//! Exits 0 when clean, 1 with one line per violation otherwise.

use qse_check::lint::{find_workspace_root, lint_tree};
use std::path::PathBuf;
use std::process::ExitCode;

fn main() -> ExitCode {
    let mut args = std::env::args().skip(1);
    let root = match args.next().as_deref() {
        Some("--root") => match args.next() {
            Some(p) => Some(PathBuf::from(p)),
            None => {
                eprintln!("error: --root needs a path");
                return ExitCode::FAILURE;
            }
        },
        Some(other) => {
            eprintln!("error: unknown argument `{other}` (usage: qse-lint [--root PATH])");
            return ExitCode::FAILURE;
        }
        None => None,
    };
    let root = match root.or_else(|| {
        std::env::current_dir()
            .ok()
            .and_then(|d| find_workspace_root(&d))
    }) {
        Some(r) => r,
        None => {
            eprintln!("error: no workspace root found (run inside the repo or pass --root)");
            return ExitCode::FAILURE;
        }
    };
    match lint_tree(&root) {
        Ok(violations) if violations.is_empty() => {
            println!("qse-lint: clean");
            ExitCode::SUCCESS
        }
        Ok(violations) => {
            for v in &violations {
                eprintln!("{v}");
            }
            eprintln!("qse-lint: {} violation(s)", violations.len());
            ExitCode::FAILURE
        }
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}
