//! Static plan & protocol verifier: prove exchange schedules safe
//! *before* they run.
//!
//! The runtime deadlock detector ([`qse_comm::deadlock`]) only sees
//! schedules that actually executed; a mismatched tag or an over-budget
//! streamed ring still costs a timeout on the machine that hits it. This
//! module closes that gap by abstractly interpreting a compiled execution
//! plan — fused [`ScheduleStep`] sequences, transpiled [`Plan`] /
//! [`PlanStep`] permutations, and all three [`ExchangeMode`]s — and
//! symbolically deriving every rank's communication trace (ordered
//! sends / receives with peer, tag, and byte size) for a given rank
//! count, **without executing anything**. The abstraction mirrors
//! `statevec::dist` operation for operation: same tag sequence (one
//! [`next_tag`](TraceDeriver::next_tag) per distributed gate on every
//! rank, spectators included), same chunk boundaries, same eager-send
//! permutation lowering.
//!
//! Four properties are proved over the derived traces:
//!
//! 1. **Protocol matching** — every posted send has exactly one matching
//!    receive with identical tag and byte size (and no wire tag is ever
//!    posted twice on the same edge).
//! 2. **Deadlock freedom** — a scheduler simulation over trace prefixes
//!    (sends buffer, receives block) always drains; a stuck state is
//!    reported with a per-rank wait-for diagnosis naming the plan step.
//! 3. **Buffer bounds** — streamed-mode peak in-flight receive bytes
//!    never exceed `ring_depth × chunk_size`, and permutation staging
//!    writes every destination slot exactly once (no scratch aliasing).
//! 4. **Layout soundness** — the qubit permutation tracked through
//!    `comm_avoid` plan steps composes to exactly [`Plan::layout`] (the
//!    identity after `with_layout_restored`), replayed independently of
//!    the transpiler, so measurement indices are provably correct.
//!
//! The byte totals of the symbolic trace are exact, not estimates: the
//! per-rank [`predicted `bytes_exchanged``](RankTrace::predicted_exchanged)
//! must equal the runtime [`qse_comm::TrafficStats::bytes_exchanged`]
//! bit-for-bit, and the statevector property suites pin that equality.

use qse_circuit::classify::{classify, GateClass, Layout, BYTES_PER_AMP};
use qse_circuit::transpile::fusion::{fused_schedule, ScheduleStep};
use qse_circuit::transpile::{Plan, PlanStep};
use qse_circuit::{Circuit, Gate, Permutation};
use qse_comm::chunking::{chunk_tag, ChunkPolicy, ExchangeMode, StreamedExchange};
use std::collections::HashMap;
use std::fmt;

/// User exchange tags stay below `2^31`; mirrors the private constant in
/// `statevec::dist` (the verifier must reproduce the exact tag stream).
const TAG_MOD: u64 = 1 << 30;

/// Exhaustive per-slot permutation alias checking is quadratic-ish in the
/// slice; above this many local amplitudes the closed-form counting check
/// (still exact for block *sizes*) stands alone.
const ALIAS_EXHAUSTIVE_MAX_AMPS: u64 = 1 << 16;

/// Exchange options the abstraction must honour — the statically
/// relevant subset of `statevec::dist::DistConfig`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct VerifyOptions {
    /// Pairwise exchange lowering to derive traces for.
    pub exchange_mode: ExchangeMode,
    /// Message-size cap; identical chunk boundaries to the runtime.
    pub chunk_policy: ChunkPolicy,
    /// Model the half exchange for one-global distributed SWAPs.
    pub half_exchange_swaps: bool,
    /// Diagonal-fusion threshold. Fused runs are diagonal and therefore
    /// communication-free, so this never changes the trace — the walk
    /// still honours it so the verifier interprets the same schedule the
    /// engine executes.
    pub min_fuse: Option<usize>,
    /// Streamed receive-ring depth (the engine uses
    /// [`StreamedExchange::DEFAULT_RING_DEPTH`]).
    pub ring_depth: usize,
}

impl Default for VerifyOptions {
    fn default() -> Self {
        VerifyOptions {
            exchange_mode: ExchangeMode::Blocking,
            chunk_policy: ChunkPolicy {
                max_message_bytes: 1 << 20,
            },
            half_exchange_swaps: false,
            min_fuse: None,
            ring_depth: StreamedExchange::DEFAULT_RING_DEPTH,
        }
    }
}

/// One symbolic communication operation in a rank's trace.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TraceOp {
    /// Buffered send of `bytes` to `peer` under wire tag `tag`.
    Send { peer: usize, tag: u64, bytes: usize },
    /// Blocking receive of `bytes` from `peer` under wire tag `tag`.
    Recv { peer: usize, tag: u64, bytes: usize },
    /// Streamed `wait_any`: completes when *any* not-yet-received chunk
    /// of receive group `group` (see [`RankTrace::groups`]) arrives.
    RecvAny { peer: usize, group: usize },
}

/// A trace operation tagged with the plan step that generated it.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceEvent {
    /// Index into [`TraceSet::step_labels`] (plan step index).
    pub step: usize,
    pub op: TraceOp,
}

/// The chunk set a streamed exchange posts up front: `wait_any` may
/// complete its members in any order.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RecvGroup {
    pub peer: usize,
    /// `(wire tag, bytes)` of every posted receive chunk.
    pub chunks: Vec<(u64, usize)>,
}

/// A streamed exchange's scratch obligation: the receive ring cycles
/// `ring_depth` slots over these chunk payloads, so peak in-flight bytes
/// are the sum of the `ring_depth` largest chunks and must stay within
/// `ring_depth × cap_bytes`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StreamedWindow {
    pub rank: usize,
    pub step: usize,
    pub ring_depth: usize,
    /// The aligned per-chunk byte cap in force for this exchange.
    pub cap_bytes: usize,
    pub chunk_bytes: Vec<usize>,
}

/// One rank's derived trace.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct RankTrace {
    pub events: Vec<TraceEvent>,
    pub groups: Vec<RecvGroup>,
    /// Exact prediction of this rank's
    /// [`qse_comm::TrafficStats::bytes_exchanged`] after running the
    /// plan (the runtime records the *sent* side of every exchange).
    pub predicted_exchanged: u64,
}

/// Every rank's symbolic trace plus the buffer-bound obligations,
/// ready for [`check_traces`]. Fields are public so tests and the CLI
/// can fabricate deliberately broken trace sets and watch them bounce.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct TraceSet {
    pub n_ranks: usize,
    /// Human-readable label per plan step, indexed by `TraceEvent::step`.
    pub step_labels: Vec<String>,
    pub ranks: Vec<RankTrace>,
    pub windows: Vec<StreamedWindow>,
}

impl TraceSet {
    fn label(&self, step: usize) -> String {
        self.step_labels
            .get(step)
            .cloned()
            .unwrap_or_else(|| format!("step {step}"))
    }
}

/// A rank blocked at a specific trace position, for deadlock diagnoses.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BlockedRank {
    pub rank: usize,
    pub step: usize,
    pub label: String,
    /// What the rank is waiting on, e.g. `recv(peer=2, tag=12884901888)`.
    pub waiting_on: String,
}

/// A proof obligation that failed, with enough structure for tests to
/// assert on and a [`fmt::Display`] that names the offending plan step.
#[derive(Debug, Clone, PartialEq)]
pub enum VerifyError {
    /// The same wire tag was posted twice on one directed edge.
    TagCollision {
        src: usize,
        dst: usize,
        tag: u64,
        first_step: usize,
        second_step: usize,
        label: String,
    },
    /// A send has no matching receive on the destination rank.
    UnmatchedSend {
        src: usize,
        dst: usize,
        tag: u64,
        bytes: usize,
        step: usize,
        label: String,
    },
    /// A posted receive that no send ever satisfies.
    UnmatchedRecv {
        dst: usize,
        src: usize,
        tag: u64,
        bytes: usize,
        step: usize,
        label: String,
    },
    /// Send and receive match on tag but disagree on byte size.
    SizeMismatch {
        src: usize,
        dst: usize,
        tag: u64,
        sent: usize,
        expected: usize,
        step: usize,
        label: String,
    },
    /// The scheduler simulation got stuck: per-rank wait-for diagnosis.
    Deadlock { blocked: Vec<BlockedRank> },
    /// A streamed exchange's peak in-flight bytes exceed the ring budget.
    RingOverrun {
        rank: usize,
        step: usize,
        peak_bytes: usize,
        budget_bytes: usize,
        label: String,
    },
    /// Permutation staging would write a destination slot twice (or miss
    /// one): scratch aliases live amplitude ranges.
    ScratchAlias {
        rank: usize,
        step: usize,
        detail: String,
        label: String,
    },
    /// The permutations in the plan do not compose to `Plan::layout`.
    LayoutDrift {
        expected: Vec<u32>,
        found: Vec<u32>,
    },
    /// Lockstep replay of the original circuit disagrees with a plan
    /// gate step (or gates were dropped / invented).
    GateMismatch { step: usize, detail: String },
    /// The plan uses a construct the engine (and hence the verifier)
    /// does not support — e.g. a gate operand out of range.
    Unsupported { step: usize, detail: String },
}

impl fmt::Display for VerifyError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            VerifyError::TagCollision {
                src,
                dst,
                tag,
                first_step,
                second_step,
                label,
            } => write!(
                f,
                "tag collision on edge {src}→{dst}: wire tag {tag} posted by both \
                 step {first_step} and step {second_step} ({label})"
            ),
            VerifyError::UnmatchedSend {
                src,
                dst,
                tag,
                bytes,
                step,
                label,
            } => write!(
                f,
                "unmatched send: rank {src} sends {bytes} B to rank {dst} with tag {tag} \
                 at step {step} ({label}) but rank {dst} never posts a matching receive"
            ),
            VerifyError::UnmatchedRecv {
                dst,
                src,
                tag,
                bytes,
                step,
                label,
            } => write!(
                f,
                "unmatched receive: rank {dst} expects {bytes} B from rank {src} with \
                 tag {tag} at step {step} ({label}) but rank {src} never sends it"
            ),
            VerifyError::SizeMismatch {
                src,
                dst,
                tag,
                sent,
                expected,
                step,
                label,
            } => write!(
                f,
                "size mismatch on edge {src}→{dst} tag {tag}: {sent} B sent but \
                 {expected} B expected, step {step} ({label})"
            ),
            VerifyError::Deadlock { blocked } => {
                write!(f, "static deadlock: no rank can make progress;")?;
                for b in blocked {
                    write!(
                        f,
                        " rank {} blocked on {} at step {} ({});",
                        b.rank, b.waiting_on, b.step, b.label
                    )?;
                }
                Ok(())
            }
            VerifyError::RingOverrun {
                rank,
                step,
                peak_bytes,
                budget_bytes,
                label,
            } => write!(
                f,
                "streamed ring overrun on rank {rank}: peak in-flight {peak_bytes} B \
                 exceeds ring budget {budget_bytes} B at step {step} ({label})"
            ),
            VerifyError::ScratchAlias {
                rank,
                step,
                detail,
                label,
            } => write!(
                f,
                "permutation scratch aliasing on rank {rank} at step {step} ({label}): {detail}"
            ),
            VerifyError::LayoutDrift { expected, found } => write!(
                f,
                "layout drift: plan permutations compose to {found:?} but Plan::layout \
                 declares {expected:?} — measurement indices would be wrong"
            ),
            VerifyError::GateMismatch { step, detail } => {
                write!(f, "gate mismatch at step {step}: {detail}")
            }
            VerifyError::Unsupported { step, detail } => {
                write!(f, "unsupported construct at step {step}: {detail}")
            }
        }
    }
}

impl std::error::Error for VerifyError {}

/// Summary of a successful verification.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct VerifyReport {
    pub n_ranks: usize,
    /// Total trace events across all ranks.
    pub events: usize,
    /// Distributed (communicating) gate steps interpreted.
    pub distributed_gates: usize,
    /// Global `Permute` steps that actually hit the wire.
    pub wire_permutes: usize,
    /// Total bytes posted on the wire across all ranks.
    pub bytes_on_wire: u64,
    /// Exact per-rank prediction of `TrafficStats.bytes_exchanged`.
    pub predicted_exchanged: Vec<u64>,
}

// ---------------------------------------------------------------------
// Trace derivation: the abstract interpreter.
// ---------------------------------------------------------------------

struct RankDeriver<'a> {
    rank: u64,
    layout: Layout,
    opts: &'a VerifyOptions,
    seq: u64,
    step: usize,
    trace: RankTrace,
    windows: Vec<StreamedWindow>,
}

impl<'a> RankDeriver<'a> {
    fn new(rank: u64, layout: Layout, opts: &'a VerifyOptions) -> Self {
        RankDeriver {
            rank,
            layout,
            opts,
            seq: 0,
            step: 0,
            trace: RankTrace::default(),
            windows: Vec::new(),
        }
    }

    /// Mirrors `DistributedState::next_tag`: advanced once per
    /// distributed gate on every rank, spectators included.
    fn next_tag(&mut self) -> u64 {
        self.seq += 1;
        self.seq % TAG_MOD
    }

    fn rank_bit_value(&self, q: u32) -> u64 {
        (self.rank >> self.layout.rank_bit(q)) & 1
    }

    fn push(&mut self, op: TraceOp) {
        self.trace.events.push(TraceEvent {
            step: self.step,
            op,
        });
    }

    /// Lowers one symmetric pairwise exchange (both sides send and
    /// expect `bytes`) under the configured exchange mode, mirroring
    /// `comm::chunking::{exchange_blocking, exchange_nonblocking,
    /// StreamedExchange}` chunk for chunk.
    fn pair_exchange(&mut self, peer: usize, tag: u64, bytes: usize, align_amps: usize) {
        match self.opts.exchange_mode {
            ExchangeMode::Blocking => {
                // Lockstep: send chunk i, then receive chunk i.
                for (i, range) in self.opts.chunk_policy.ranges(bytes).enumerate() {
                    self.push(TraceOp::Send {
                        peer,
                        tag: chunk_tag(tag, i),
                        bytes: range.len(),
                    });
                    self.push(TraceOp::Recv {
                        peer,
                        tag: chunk_tag(tag, i),
                        bytes: range.len(),
                    });
                }
            }
            ExchangeMode::NonBlocking => {
                // All isends fly first (irecv posting never blocks), then
                // the rank awaits its receives in posted order.
                for (i, range) in self.opts.chunk_policy.ranges(bytes).enumerate() {
                    self.push(TraceOp::Send {
                        peer,
                        tag: chunk_tag(tag, i),
                        bytes: range.len(),
                    });
                }
                for (i, range) in self.opts.chunk_policy.ranges(bytes).enumerate() {
                    self.push(TraceOp::Recv {
                        peer,
                        tag: chunk_tag(tag, i),
                        bytes: range.len(),
                    });
                }
            }
            ExchangeMode::Streamed => {
                // `StreamedExchange::begin` aligns chunks to whole kernel
                // orbits, posts every irecv, primes `ring_depth` sends;
                // each `next()` sends one more chunk then waits for *any*
                // outstanding receive.
                let policy = self.opts.chunk_policy.aligned(align_amps * 16);
                let chunks: Vec<(u64, usize)> = policy
                    .ranges(bytes)
                    .enumerate()
                    .map(|(i, r)| (chunk_tag(tag, i), r.len()))
                    .collect();
                let n = chunks.len();
                let group = self.trace.groups.len();
                self.trace.groups.push(RecvGroup {
                    peer,
                    chunks: chunks.clone(),
                });
                self.windows.push(StreamedWindow {
                    rank: self.rank as usize,
                    step: self.step,
                    ring_depth: self.opts.ring_depth,
                    cap_bytes: policy.max_message_bytes,
                    chunk_bytes: chunks.iter().map(|&(_, b)| b).collect(),
                });
                let primed = self.opts.ring_depth.min(n);
                for &(t, b) in &chunks[..primed] {
                    self.push(TraceOp::Send { peer, tag: t, bytes: b });
                }
                for k in 0..n {
                    if let Some(&(t, b)) = chunks.get(primed + k) {
                        self.push(TraceOp::Send { peer, tag: t, bytes: b });
                    }
                    self.push(TraceOp::RecvAny { peer, group });
                }
            }
        }
        self.trace.predicted_exchanged += bytes as u64;
    }

    fn gate(&mut self, g: &Gate) -> Result<(), VerifyError> {
        if g.max_qubit() >= self.layout.n_qubits() {
            return Err(VerifyError::Unsupported {
                step: self.step,
                detail: format!(
                    "gate operand {} out of range for {} qubits",
                    g.max_qubit(),
                    self.layout.n_qubits()
                ),
            });
        }
        match classify(g, &self.layout) {
            GateClass::FullyLocal | GateClass::LocalMemory => Ok(()),
            GateClass::Distributed => {
                let tag = self.next_tag();
                match *g {
                    Gate::Swap(a, b) => self.dist_swap(a, b, tag),
                    Gate::Unitary2 { a, b, .. } => self.dist_unitary2(a, b, tag),
                    ref g1 => {
                        self.dist_1q(g1.target(), g1.control(), tag);
                        Ok(())
                    }
                }
            }
        }
    }

    fn dist_1q(&mut self, target: u32, control: Option<u32>, tag: u64) {
        if let Some(c) = control {
            // Global control with the bit clear: spectator rank (the pair
            // shares the control bit, so neither side exchanges).
            if !self.layout.is_local(c) && self.rank_bit_value(c) == 0 {
                return;
            }
        }
        let pair = self.layout.pair_rank(self.rank, target) as usize;
        let bytes = (self.layout.local_amps() * BYTES_PER_AMP) as usize;
        self.pair_exchange(pair, tag, bytes, 1);
    }

    fn dist_unitary2(&mut self, a: u32, b: u32, tag: u64) -> Result<(), VerifyError> {
        let (lo, hi) = if a < b { (a, b) } else { (b, a) };
        if self.layout.is_local(lo) {
            let pair = self.layout.pair_rank(self.rank, hi) as usize;
            let bytes = (self.layout.local_amps() * BYTES_PER_AMP) as usize;
            // Streamed chunks must cover whole |hi lo⟩ orbits.
            self.pair_exchange(pair, tag, bytes, 1usize << (lo + 1));
            Ok(())
        } else {
            // Both global: SWAP `lo` against local qubit 0, apply the
            // one-global form, SWAP back — three exchanges, three tags,
            // identical sequencing on every rank.
            if self.layout.local_qubits() == 0 {
                return Err(VerifyError::Unsupported {
                    step: self.step,
                    detail: "both-global Unitary2 needs at least one local qubit".into(),
                });
            }
            let temp = 0u32;
            self.dist_swap(temp, lo, tag)?;
            let tag2 = self.next_tag();
            self.dist_unitary2(temp, hi, tag2)?;
            let tag3 = self.next_tag();
            self.dist_swap(temp, lo, tag3)
        }
    }

    fn dist_swap(&mut self, a: u32, b: u32, tag: u64) -> Result<(), VerifyError> {
        let (lo, hi) = if a < b { (a, b) } else { (b, a) };
        let local_amps = self.layout.local_amps();
        if self.layout.is_local(lo) {
            let pair = self.layout.pair_rank(self.rank, hi) as usize;
            if self.opts.half_exchange_swaps {
                // Each side ships only the half the peer needs.
                let bytes = (local_amps * BYTES_PER_AMP / 2) as usize;
                self.pair_exchange(pair, tag, bytes, 1);
            } else {
                let bytes = (local_amps * BYTES_PER_AMP) as usize;
                self.pair_exchange(pair, tag, bytes, 1);
            }
        } else {
            // Both global: equal-address-bit ranks are spectators.
            let x = self.rank_bit_value(lo);
            let y = self.rank_bit_value(hi);
            if x == y {
                return Ok(());
            }
            let mask =
                (1u64 << self.layout.rank_bit(lo)) | (1u64 << self.layout.rank_bit(hi));
            let pair = (self.rank ^ mask) as usize;
            let bytes = (local_amps * BYTES_PER_AMP) as usize;
            self.pair_exchange(pair, tag, bytes, 1);
        }
        Ok(())
    }

    /// Mirrors `apply_global_permutation`: identity and purely-local
    /// permutations never touch the wire (and consume no tag); anything
    /// else packs per-destination blocks, eagerly sends them ascending
    /// (chunked), then receives each source block ascending.
    fn permute(&mut self, perm: &Permutation) -> Result<(), VerifyError> {
        if perm.len() != self.layout.n_qubits() {
            return Err(VerifyError::Unsupported {
                step: self.step,
                detail: format!(
                    "permutation width {} does not match register width {}",
                    perm.len(),
                    self.layout.n_qubits()
                ),
            });
        }
        if perm.is_identity() {
            return Ok(());
        }
        let l = self.layout.local_qubits();
        let n = self.layout.n_qubits();
        if (l..n).all(|p| perm.apply(p) == p) {
            return Ok(()); // purely local reorder, zero wire bytes
        }
        let tag = self.next_tag();
        let ranks = self.layout.n_ranks();
        let local_amps = self.layout.local_amps();
        let me = self.rank;

        // Closed-form block sizes (same derivation as
        // `permutation_traffic`): destination rank bit `p` is sourced
        // from bit `perm⁻¹(L+p)` of the current index — local source
        // bits are free (each of the 2^m combinations gets an equal
        // share), global source bits pin a (dest, src) constraint.
        let inv = perm.inverse();
        let mut m = 0u32;
        let mut constraints: Vec<(u32, u32)> = Vec::new();
        for p in l..n {
            let src = inv.apply(p);
            if src < l {
                m += 1;
            } else {
                constraints.push((p - l, src - l));
            }
        }
        let block_amps = |u: u64, v: u64| -> u64 {
            if constraints
                .iter()
                .all(|&(d, s)| (v >> d) & 1 == (u >> s) & 1)
            {
                local_amps >> m
            } else {
                0
            }
        };

        // Eager ascending sends (skip self and empty blocks) …
        let mut sent_bytes = 0u64;
        for v in 0..ranks {
            if v == me {
                continue;
            }
            let bytes = (block_amps(me, v) * BYTES_PER_AMP) as usize;
            if bytes == 0 {
                continue;
            }
            sent_bytes += bytes as u64;
            for (idx, range) in self.opts.chunk_policy.ranges(bytes).enumerate() {
                self.push(TraceOp::Send {
                    peer: v as usize,
                    tag: chunk_tag(tag, idx),
                    bytes: range.len(),
                });
            }
        }
        self.trace.predicted_exchanged += sent_bytes;

        // … then ascending receives of every non-empty source block.
        for w in 0..ranks {
            if w == me {
                continue;
            }
            let bytes = (block_amps(w, me) * BYTES_PER_AMP) as usize;
            if bytes == 0 {
                continue;
            }
            for (idx, range) in self.opts.chunk_policy.ranges(bytes).enumerate() {
                self.push(TraceOp::Recv {
                    peer: w as usize,
                    tag: chunk_tag(tag, idx),
                    bytes: range.len(),
                });
            }
        }

        // Scratch-alias obligation: incoming blocks plus the stay-put
        // block must tile this rank's staging buffer exactly once.
        let covered: u64 = (0..ranks).map(|u| block_amps(u, me)).sum();
        if covered != local_amps {
            return Err(VerifyError::ScratchAlias {
                rank: me as usize,
                step: self.step,
                detail: format!(
                    "incoming blocks cover {covered} of {local_amps} staging slots"
                ),
                label: String::new(),
            });
        }
        if local_amps <= ALIAS_EXHAUSTIVE_MAX_AMPS {
            // Small slices: prove write-once per destination slot, not
            // just the counting argument.
            let mask = local_amps - 1;
            let mut seen = vec![false; local_amps as usize];
            for u in 0..ranks {
                for sl in 0..local_amps {
                    let d = perm.permute_index((u << l) | sl);
                    if d >> l == me {
                        let slot = (d & mask) as usize;
                        if seen[slot] {
                            return Err(VerifyError::ScratchAlias {
                                rank: me as usize,
                                step: self.step,
                                detail: format!("staging slot {slot} written twice"),
                                label: String::new(),
                            });
                        }
                        seen[slot] = true;
                    }
                }
            }
        }
        Ok(())
    }

    /// Walks one gate segment through the same fused schedule the engine
    /// executes: fused runs are diagonal (communication-free), singles
    /// dispatch through [`Self::gate`]. `steps` maps each gate index in
    /// `segment` back to its plan step index.
    fn run_segment(&mut self, segment: &Circuit, steps: &[usize]) -> Result<(), VerifyError> {
        match self.opts.min_fuse {
            None => {
                for (i, g) in segment.gates().iter().enumerate() {
                    self.step = steps[i];
                    self.gate(g)?;
                }
            }
            Some(min_fuse) => {
                for sched in fused_schedule(segment, min_fuse) {
                    match sched {
                        ScheduleStep::Single(i) => {
                            self.step = steps[i];
                            self.gate(&segment.gates()[i])?;
                        }
                        ScheduleStep::Fused(_) => {
                            // Diagonal sweep: provably no communication.
                        }
                    }
                }
            }
        }
        Ok(())
    }
}

/// Derives every rank's symbolic trace for `plan` at `n_ranks` ranks.
///
/// `n_ranks` must be a power of two at most `2^n_qubits` (the engine's
/// own layout constraint).
pub fn derive_traces(
    plan: &Plan,
    n_ranks: u64,
    opts: &VerifyOptions,
) -> Result<TraceSet, VerifyError> {
    if n_ranks == 0 || !n_ranks.is_power_of_two() || n_ranks > (1u64 << plan.n_qubits()) {
        return Err(VerifyError::Unsupported {
            step: 0,
            detail: format!(
                "{n_ranks} ranks is not a power of two within 2^{}",
                plan.n_qubits()
            ),
        });
    }
    let layout = Layout::new(plan.n_qubits(), n_ranks);
    let step_labels: Vec<String> = plan
        .steps
        .iter()
        .enumerate()
        .map(|(i, s)| match s {
            PlanStep::Gate(g) => format!("plan step {i}: gate {g:?}"),
            PlanStep::Permute(p) => format!("plan step {i}: permute {:?}", p.as_transpositions()),
        })
        .collect();
    let mut ts = TraceSet {
        n_ranks: n_ranks as usize,
        step_labels,
        ranks: Vec::with_capacity(n_ranks as usize),
        windows: Vec::new(),
    };
    for rank in 0..n_ranks {
        let mut d = RankDeriver::new(rank, layout, opts);
        // Mirror `run_plan`: batch gate steps into pending segments,
        // flush through the fused schedule before each permute.
        let mut pending = Circuit::new(plan.n_qubits());
        let mut pending_steps: Vec<usize> = Vec::new();
        for (i, step) in plan.steps.iter().enumerate() {
            match step {
                PlanStep::Gate(g) => {
                    pending.push(g.clone());
                    pending_steps.push(i);
                }
                PlanStep::Permute(p) => {
                    if !pending.is_empty() {
                        d.run_segment(&pending, &pending_steps)?;
                        pending = Circuit::new(plan.n_qubits());
                        pending_steps.clear();
                    }
                    d.step = i;
                    d.permute(p)?;
                }
            }
        }
        if !pending.is_empty() {
            d.run_segment(&pending, &pending_steps)?;
        }
        ts.windows.extend(d.windows);
        ts.ranks.push(d.trace);
    }
    // Fill in step labels on derivation-time errors' behalf: alias
    // errors constructed inside the deriver carry an empty label.
    Ok(ts)
}

// ---------------------------------------------------------------------
// Property 1: protocol matching.
// ---------------------------------------------------------------------

fn check_protocol(ts: &TraceSet) -> Result<(), VerifyError> {
    // (src, dst) → tag → (bytes, step)
    let mut sends: HashMap<(usize, usize), HashMap<u64, (usize, usize)>> = HashMap::new();
    let mut recvs: HashMap<(usize, usize), HashMap<u64, (usize, usize)>> = HashMap::new();
    for (rank, tr) in ts.ranks.iter().enumerate() {
        for ev in &tr.events {
            match ev.op {
                TraceOp::Send { peer, tag, bytes } => {
                    let edge = sends.entry((rank, peer)).or_default();
                    if let Some(&(_, first)) = edge.get(&tag) {
                        return Err(VerifyError::TagCollision {
                            src: rank,
                            dst: peer,
                            tag,
                            first_step: first,
                            second_step: ev.step,
                            label: ts.label(ev.step),
                        });
                    }
                    edge.insert(tag, (bytes, ev.step));
                }
                TraceOp::Recv { peer, tag, bytes } => {
                    let edge = recvs.entry((peer, rank)).or_default();
                    if let Some(&(_, first)) = edge.get(&tag) {
                        return Err(VerifyError::TagCollision {
                            src: peer,
                            dst: rank,
                            tag,
                            first_step: first,
                            second_step: ev.step,
                            label: ts.label(ev.step),
                        });
                    }
                    edge.insert(tag, (bytes, ev.step));
                }
                TraceOp::RecvAny { peer, group } => {
                    // A group's obligations are registered once, at its
                    // first wait; later waits reference the same posts.
                    let g = &ts.ranks[rank].groups[group];
                    debug_assert_eq!(g.peer, peer);
                    let edge = recvs.entry((peer, rank)).or_default();
                    for &(tag, bytes) in &g.chunks {
                        match edge.get(&tag) {
                            Some(&(b, s)) if (b, s) == (bytes, ev.step) => {} // same group, later wait
                            Some(&(_, first)) if first != ev.step => {
                                return Err(VerifyError::TagCollision {
                                    src: peer,
                                    dst: rank,
                                    tag,
                                    first_step: first,
                                    second_step: ev.step,
                                    label: ts.label(ev.step),
                                });
                            }
                            _ => {
                                edge.insert(tag, (bytes, ev.step));
                            }
                        }
                    }
                }
            }
        }
    }
    for (&(src, dst), tags) in &sends {
        for (&tag, &(bytes, step)) in tags {
            match recvs.get(&(src, dst)).and_then(|m| m.get(&tag)) {
                None => {
                    return Err(VerifyError::UnmatchedSend {
                        src,
                        dst,
                        tag,
                        bytes,
                        step,
                        label: ts.label(step),
                    })
                }
                Some(&(expected, rstep)) if expected != bytes => {
                    return Err(VerifyError::SizeMismatch {
                        src,
                        dst,
                        tag,
                        sent: bytes,
                        expected,
                        step: rstep,
                        label: ts.label(step),
                    })
                }
                Some(_) => {}
            }
        }
    }
    for (&(src, dst), tags) in &recvs {
        for (&tag, &(bytes, step)) in tags {
            if sends.get(&(src, dst)).and_then(|m| m.get(&tag)).is_none() {
                return Err(VerifyError::UnmatchedRecv {
                    dst,
                    src,
                    tag,
                    bytes,
                    step,
                    label: ts.label(step),
                });
            }
        }
    }
    Ok(())
}

// ---------------------------------------------------------------------
// Property 2: deadlock freedom (scheduler simulation).
// ---------------------------------------------------------------------

fn check_deadlock_freedom(ts: &TraceSet) -> Result<(), VerifyError> {
    // In-flight buffered messages per directed edge: tag → count (tags
    // are unique after check_protocol, but stay robust for fabricated
    // traces that collide).
    let mut inflight: HashMap<(usize, usize), HashMap<u64, usize>> = HashMap::new();
    let mut pc = vec![0usize; ts.ranks.len()];
    // Per (rank, group): set of chunk tags not yet consumed.
    let mut group_left: HashMap<(usize, usize), Vec<u64>> = HashMap::new();
    for (r, tr) in ts.ranks.iter().enumerate() {
        for (gi, g) in tr.groups.iter().enumerate() {
            group_left.insert((r, gi), g.chunks.iter().map(|&(t, _)| t).collect());
        }
    }
    loop {
        let mut progressed = false;
        for r in 0..ts.ranks.len() {
            let events = &ts.ranks[r].events;
            while pc[r] < events.len() {
                match events[pc[r]].op {
                    TraceOp::Send { peer, tag, .. } => {
                        // Buffered transport: sends never block.
                        *inflight.entry((r, peer)).or_default().entry(tag).or_insert(0) += 1;
                    }
                    TraceOp::Recv { peer, tag, .. } => {
                        let Some(count) =
                            inflight.get_mut(&(peer, r)).and_then(|m| m.get_mut(&tag))
                        else {
                            break;
                        };
                        if *count == 0 {
                            break;
                        }
                        *count -= 1;
                    }
                    TraceOp::RecvAny { peer, group } => {
                        let left = group_left.get_mut(&(r, group)).expect("group exists");
                        let Some(pos) = left.iter().position(|t| {
                            inflight
                                .get(&(peer, r))
                                .and_then(|m| m.get(t))
                                .is_some_and(|&c| c > 0)
                        }) else {
                            break;
                        };
                        let tag = left.swap_remove(pos);
                        *inflight
                            .get_mut(&(peer, r))
                            .and_then(|m| m.get_mut(&tag))
                            .expect("matched above") -= 1;
                    }
                }
                pc[r] += 1;
                progressed = true;
            }
        }
        if pc.iter().enumerate().all(|(r, &p)| p == ts.ranks[r].events.len()) {
            return Ok(());
        }
        if !progressed {
            let blocked = pc
                .iter()
                .enumerate()
                .filter(|&(r, &p)| p < ts.ranks[r].events.len())
                .map(|(r, &p)| {
                    let ev = &ts.ranks[r].events[p];
                    let waiting_on = match ev.op {
                        TraceOp::Send { peer, tag, .. } => {
                            format!("send(peer={peer}, tag={tag})")
                        }
                        TraceOp::Recv { peer, tag, .. } => {
                            format!("recv(peer={peer}, tag={tag})")
                        }
                        TraceOp::RecvAny { peer, group } => {
                            format!("recv_any(peer={peer}, group={group})")
                        }
                    };
                    BlockedRank {
                        rank: r,
                        step: ev.step,
                        label: ts.label(ev.step),
                        waiting_on,
                    }
                })
                .collect();
            return Err(VerifyError::Deadlock { blocked });
        }
    }
}

// ---------------------------------------------------------------------
// Property 3: buffer bounds (streamed ring windows).
// ---------------------------------------------------------------------

fn check_buffer_bounds(ts: &TraceSet) -> Result<(), VerifyError> {
    for w in &ts.windows {
        let budget = w.ring_depth * w.cap_bytes;
        // The receive ring cycles `ring_depth` slots round-robin, so the
        // worst simultaneous footprint is the `ring_depth` largest chunks.
        let mut sorted: Vec<usize> = w.chunk_bytes.clone();
        sorted.sort_unstable_by(|a, b| b.cmp(a));
        let peak: usize = sorted.iter().take(w.ring_depth).sum();
        if peak > budget || w.chunk_bytes.iter().any(|&c| c > w.cap_bytes) {
            return Err(VerifyError::RingOverrun {
                rank: w.rank,
                step: w.step,
                peak_bytes: peak.max(*w.chunk_bytes.iter().max().unwrap_or(&0)),
                budget_bytes: budget,
                label: ts.label(w.step),
            });
        }
    }
    Ok(())
}

/// Checks properties 1–3 over an already-derived (or fabricated) trace
/// set: protocol matching, deadlock freedom, buffer bounds.
pub fn check_traces(ts: &TraceSet) -> Result<(), VerifyError> {
    check_protocol(ts)?;
    check_deadlock_freedom(ts)?;
    check_buffer_bounds(ts)
}

// ---------------------------------------------------------------------
// Property 4: layout soundness (independent lockstep replay).
// ---------------------------------------------------------------------

fn transposition(n: u32, a: u32, b: u32) -> Permutation {
    let mut t = Permutation::identity(n);
    t.swap(a, b);
    t
}

/// Replays `plan` against `original` (when given) and proves the layout
/// bookkeeping sound: every `Permute` composes onto the tracked layout,
/// every emitted gate equals the matching original gate relabelled
/// through that layout (input SWAPs may be absorbed virtually), and the
/// final layout equals [`Plan::layout`] — the identity for plans built
/// with `with_layout_restored`, so measurement indices are correct.
pub fn verify_layout(plan: &Plan, original: Option<&Circuit>) -> Result<(), VerifyError> {
    let n = plan.n_qubits();
    let mut l = Permutation::identity(n);
    match original {
        None => {
            for step in &plan.steps {
                if let PlanStep::Permute(p) = step {
                    l = p.compose(&l);
                }
            }
        }
        Some(c) => {
            if c.n_qubits() != n {
                return Err(VerifyError::GateMismatch {
                    step: 0,
                    detail: format!(
                        "original circuit has {} qubits, plan has {n}",
                        c.n_qubits()
                    ),
                });
            }
            let gates = c.gates();
            let mut oi = 0usize;
            for (si, step) in plan.steps.iter().enumerate() {
                match step {
                    PlanStep::Permute(p) => l = p.compose(&l),
                    PlanStep::Gate(g) => loop {
                        let Some(og) = gates.get(oi) else {
                            return Err(VerifyError::GateMismatch {
                                step: si,
                                detail: format!(
                                    "plan emits {g:?} but the original circuit is exhausted"
                                ),
                            });
                        };
                        let want = og.remap(&|q| l.apply(q));
                        if want == *g {
                            oi += 1;
                            break;
                        }
                        if let Gate::Swap(a, b) = *og {
                            // Absorbed as a virtual relabel by the
                            // transpiler: fold into the layout and retry.
                            l = l.compose(&transposition(n, a, b));
                            oi += 1;
                            continue;
                        }
                        return Err(VerifyError::GateMismatch {
                            step: si,
                            detail: format!(
                                "plan step {si} emits {g:?} but original gate {oi} \
                                 relabels to {want:?}"
                            ),
                        });
                    },
                }
            }
            while let Some(og) = gates.get(oi) {
                let Gate::Swap(a, b) = *og else {
                    return Err(VerifyError::GateMismatch {
                        step: plan.steps.len(),
                        detail: format!("original gate {oi} ({og:?}) never executed by the plan"),
                    });
                };
                l = l.compose(&transposition(n, a, b));
                oi += 1;
            }
        }
    }
    if l != plan.layout {
        return Err(VerifyError::LayoutDrift {
            expected: (0..n).map(|q| plan.layout.apply(q)).collect(),
            found: (0..n).map(|q| l.apply(q)).collect(),
        });
    }
    Ok(())
}

// ---------------------------------------------------------------------
// Entry points.
// ---------------------------------------------------------------------

/// Statically verifies `plan` at `n_ranks` ranks under `opts`: layout
/// soundness (against `original` when given), then protocol matching,
/// deadlock freedom, and buffer bounds over the derived traces.
pub fn verify_plan(
    plan: &Plan,
    original: Option<&Circuit>,
    n_ranks: u64,
    opts: &VerifyOptions,
) -> Result<VerifyReport, VerifyError> {
    verify_layout(plan, original)?;
    let ts = derive_traces(plan, n_ranks, opts)?;
    check_traces(&ts)?;
    let mut events = 0usize;
    let mut bytes_on_wire = 0u64;
    for tr in &ts.ranks {
        events += tr.events.len();
        for ev in &tr.events {
            if let TraceOp::Send { bytes, .. } = ev.op {
                bytes_on_wire += bytes as u64;
            }
        }
    }
    // Distributed-gate / permute counts are identical across ranks by
    // construction; re-derive rank 0 cheaply for the report.
    let layout = Layout::new(plan.n_qubits(), n_ranks);
    let mut distributed = 0usize;
    let mut permutes = 0usize;
    for step in &plan.steps {
        match step {
            PlanStep::Gate(g) => {
                if classify(g, &layout) == GateClass::Distributed {
                    distributed += 1;
                }
            }
            PlanStep::Permute(p) => {
                let l = layout.local_qubits();
                let n = layout.n_qubits();
                if !p.is_identity() && !(l..n).all(|q| p.apply(q) == q) {
                    permutes += 1;
                }
            }
        }
    }
    Ok(VerifyReport {
        n_ranks: n_ranks as usize,
        events,
        distributed_gates: distributed,
        wire_permutes: permutes,
        bytes_on_wire,
        predicted_exchanged: ts.ranks.iter().map(|r| r.predicted_exchanged).collect(),
    })
}

/// Verifies a plain circuit (no transpilation) as the trivial plan.
pub fn verify_circuit(
    circuit: &Circuit,
    n_ranks: u64,
    opts: &VerifyOptions,
) -> Result<VerifyReport, VerifyError> {
    let plan = Plan::from_circuit(circuit, Permutation::identity(circuit.n_qubits()));
    verify_plan(&plan, Some(circuit), n_ranks, opts)
}

/// Verifies `plan` at every power-of-two rank count `1, 2, 4, …` up to
/// `min(2^n_qubits, max_ranks)` — the "for all R" form of the protocol
/// proof. Returns the report of the largest R.
pub fn verify_plan_all_ranks(
    plan: &Plan,
    original: Option<&Circuit>,
    max_ranks: u64,
    opts: &VerifyOptions,
) -> Result<VerifyReport, VerifyError> {
    let cap = max_ranks.min(1u64 << plan.n_qubits().min(63));
    let mut r = 1u64;
    let mut last = verify_plan(plan, original, r, opts)?;
    while r * 2 <= cap {
        r *= 2;
        last = verify_plan(plan, original, r, opts)?;
    }
    Ok(last)
}

// ---------------------------------------------------------------------
// Deliberately broken fixtures: the verifier must bite on these.
// ---------------------------------------------------------------------

/// A trace set with a wire-tag collision on edge 0→1 (two sends, one
/// matching receive): property 1 must reject it.
pub fn broken_fixture_tag_collision() -> TraceSet {
    let tag = chunk_tag(7, 0);
    TraceSet {
        n_ranks: 2,
        step_labels: vec![
            "plan step 0: gate H(3)".into(),
            "plan step 1: gate CNot { control: 0, target: 3 }".into(),
        ],
        ranks: vec![
            RankTrace {
                events: vec![
                    TraceEvent {
                        step: 0,
                        op: TraceOp::Send { peer: 1, tag, bytes: 128 },
                    },
                    TraceEvent {
                        step: 1,
                        op: TraceOp::Send { peer: 1, tag, bytes: 128 },
                    },
                ],
                groups: Vec::new(),
                predicted_exchanged: 256,
            },
            RankTrace {
                events: vec![TraceEvent {
                    step: 0,
                    op: TraceOp::Recv { peer: 0, tag, bytes: 128 },
                }],
                groups: Vec::new(),
                predicted_exchanged: 0,
            },
        ],
        windows: Vec::new(),
    }
}

/// A trace set whose streamed window exceeds `ring_depth × chunk_size`:
/// property 3 must reject it.
pub fn broken_fixture_ring_overrun() -> TraceSet {
    TraceSet {
        n_ranks: 2,
        step_labels: vec!["plan step 0: gate H(9) (streamed)".into()],
        ranks: vec![RankTrace::default(), RankTrace::default()],
        windows: vec![StreamedWindow {
            rank: 1,
            step: 0,
            ring_depth: 2,
            cap_bytes: 1 << 10,
            // Three over-cap chunks: peak 2 × 4096 > budget 2 × 1024.
            chunk_bytes: vec![4096, 4096, 4096],
        }],
    }
}

/// A plan whose trailing permutation fails to restore the layout it
/// declares: property 4 must reject it.
pub fn broken_fixture_unrestored_layout() -> Plan {
    let mut c = Circuit::new(4);
    c.h(0).cnot(0, 3);
    let mut plan = Plan::from_circuit(&c, Permutation::identity(4));
    // Claim the identity layout but leave a live bit-reversal permute in
    // the step list — measurement indices would silently be wrong.
    plan.steps.push(PlanStep::Permute(Permutation::reversal(4)));
    plan
}

#[cfg(test)]
mod tests {
    use super::*;
    use qse_circuit::qft::qft;
    use qse_circuit::random::{random_circuit, GatePool};
    use qse_circuit::transpile::{comm_avoid, ByteOracle, Strategy};

    fn opts_for(mode: ExchangeMode) -> VerifyOptions {
        VerifyOptions {
            exchange_mode: mode,
            ..VerifyOptions::default()
        }
    }

    #[test]
    fn qft_traces_verify_in_every_mode() {
        let c = qft(6);
        for mode in [
            ExchangeMode::Blocking,
            ExchangeMode::NonBlocking,
            ExchangeMode::Streamed,
        ] {
            for ranks in [1u64, 2, 4, 8] {
                let report = verify_circuit(&c, ranks, &opts_for(mode)).unwrap();
                if ranks == 1 {
                    assert_eq!(report.events, 0, "single rank never communicates");
                }
            }
        }
    }

    #[test]
    fn random_circuits_verify_across_ranks() {
        for seed in 0..4 {
            let c = random_circuit(7, 50, GatePool::Full, seed);
            verify_plan_all_ranks(
                &Plan::from_circuit(&c, Permutation::identity(7)),
                Some(&c),
                8,
                &VerifyOptions::default(),
            )
            .unwrap();
        }
    }

    #[test]
    fn spectator_ranks_stay_silent_but_consume_tags() {
        // A globally-controlled gate: ranks with the control bit clear
        // must post nothing, yet later distributed gates must still
        // pair up (tag sequence shared by all ranks).
        let mut c = Circuit::new(5);
        c.cnot(3, 4); // global control (qubit 3), global target: Distributed
        c.h(3); // distributed afterwards
        let ts = derive_traces(
            &Plan::from_circuit(&c, Permutation::identity(5)),
            4,
            &VerifyOptions::default(),
        )
        .unwrap();
        // Ranks 0 and 2 (control bit clear) spectate the CNot; ranks 1
        // and 3 exchange. Everyone exchanges for the H.
        let sends = |r: usize| {
            ts.ranks[r]
                .events
                .iter()
                .filter(|e| matches!(e.op, TraceOp::Send { .. }))
                .count()
        };
        assert_eq!(sends(0), sends(1) - 1);
        assert_eq!(sends(2), sends(3) - 1);
        check_traces(&ts).unwrap();
    }

    #[test]
    fn both_global_unitary2_decomposes_into_three_exchanges() {
        let m = qse_math::Matrix4::swap();
        let mut c = Circuit::new(6);
        c.push(Gate::Unitary2 { a: 4, b: 5, matrix: m });
        let report = verify_circuit(&c, 4, &VerifyOptions::default()).unwrap();
        // Three pairwise exchanges per rank (swap, unitary, swap).
        assert_eq!(report.distributed_gates, 1);
        let full = 16u64 * (1 << 4); // local_amps × BYTES_PER_AMP
        assert_eq!(report.predicted_exchanged, vec![3 * full; 4]);
    }

    #[test]
    fn half_exchange_swaps_halve_predicted_traffic() {
        let mut c = Circuit::new(6);
        c.swap(0, 5);
        let full = verify_circuit(&c, 4, &VerifyOptions::default()).unwrap();
        let half = verify_circuit(
            &c,
            4,
            &VerifyOptions {
                half_exchange_swaps: true,
                ..VerifyOptions::default()
            },
        )
        .unwrap();
        for (f, h) in full.predicted_exchanged.iter().zip(&half.predicted_exchanged) {
            assert_eq!(*f, 2 * h);
        }
    }

    #[test]
    fn comm_avoid_plans_verify_with_layout_restored() {
        let c = qft(7);
        for strategy in [Strategy::Greedy, Strategy::beam()] {
            let layout = Layout::new(7, 4);
            let plan = comm_avoid(&c, &layout, strategy, &ByteOracle).with_layout_restored();
            for mode in [
                ExchangeMode::Blocking,
                ExchangeMode::NonBlocking,
                ExchangeMode::Streamed,
            ] {
                verify_plan(&plan, Some(&c), 4, &opts_for(mode)).unwrap();
            }
        }
    }

    #[test]
    fn permutation_block_model_matches_exhaustive_check() {
        // Any valid permutation must pass the exhaustive write-once
        // check (exercised because local_amps is tiny here).
        let mut c = Circuit::new(6);
        c.h(0);
        let mut plan = Plan::from_circuit(&c, Permutation::identity(6));
        plan.steps.push(PlanStep::Permute(Permutation::reversal(6)));
        plan.steps
            .push(PlanStep::Permute(Permutation::reversal(6)));
        // The two reversals cancel: layout stays identity, so the plan
        // is still sound — and each permute must tile staging exactly.
        verify_plan(&plan, None, 8, &VerifyOptions::default()).unwrap();
    }

    #[test]
    fn streamed_small_chunks_stay_within_ring_budget() {
        let c = qft(7);
        let opts = VerifyOptions {
            exchange_mode: ExchangeMode::Streamed,
            chunk_policy: ChunkPolicy::new(128).unwrap(),
            ..VerifyOptions::default()
        };
        let ts = derive_traces(
            &Plan::from_circuit(&c, Permutation::identity(7)),
            4,
            &opts,
        )
        .unwrap();
        assert!(!ts.windows.is_empty(), "streamed exchanges create windows");
        check_traces(&ts).unwrap();
    }

    #[test]
    fn broken_tag_collision_is_rejected() {
        let err = check_traces(&broken_fixture_tag_collision()).unwrap_err();
        match err {
            VerifyError::TagCollision { src: 0, dst: 1, .. } => {}
            other => panic!("expected TagCollision, got {other}"),
        }
        assert!(err.to_string().contains("plan step 1"));
    }

    #[test]
    fn broken_ring_overrun_is_rejected() {
        let err = check_traces(&broken_fixture_ring_overrun()).unwrap_err();
        match err {
            VerifyError::RingOverrun { rank: 1, budget_bytes, .. } => {
                assert_eq!(budget_bytes, 2048);
            }
            other => panic!("expected RingOverrun, got {other}"),
        }
    }

    #[test]
    fn broken_layout_is_rejected() {
        let plan = broken_fixture_unrestored_layout();
        let err = verify_plan(&plan, None, 4, &VerifyOptions::default()).unwrap_err();
        match err {
            VerifyError::LayoutDrift { .. } => {}
            other => panic!("expected LayoutDrift, got {other}"),
        }
    }

    #[test]
    fn dropped_recv_becomes_unmatched_send_and_deadlock() {
        // Derive a correct trace, then drop one rank's receive: protocol
        // matching must flag the orphaned send.
        let mut c = Circuit::new(5);
        c.h(4);
        let mut ts = derive_traces(
            &Plan::from_circuit(&c, Permutation::identity(5)),
            2,
            &VerifyOptions::default(),
        )
        .unwrap();
        let pos = ts.ranks[1]
            .events
            .iter()
            .position(|e| matches!(e.op, TraceOp::Recv { .. }))
            .unwrap();
        ts.ranks[1].events.remove(pos);
        match check_traces(&ts).unwrap_err() {
            VerifyError::UnmatchedSend { dst: 1, .. } => {}
            other => panic!("expected UnmatchedSend, got {other}"),
        }
    }

    #[test]
    fn crossed_blocking_recvs_deadlock_statically() {
        // Two ranks that each recv before sending: a textbook deadlock
        // the scheduler simulation must catch (protocol matching alone
        // cannot — every send has a matching recv).
        let mk = |peer: usize| RankTrace {
            events: vec![
                TraceEvent {
                    step: 0,
                    op: TraceOp::Recv { peer, tag: 1, bytes: 64 },
                },
                TraceEvent {
                    step: 0,
                    op: TraceOp::Send { peer, tag: 1, bytes: 64 },
                },
            ],
            groups: Vec::new(),
            predicted_exchanged: 64,
        };
        let ts = TraceSet {
            n_ranks: 2,
            step_labels: vec!["plan step 0: crossed recv".into()],
            ranks: vec![mk(1), mk(0)],
            windows: Vec::new(),
        };
        match check_traces(&ts).unwrap_err() {
            VerifyError::Deadlock { blocked } => {
                assert_eq!(blocked.len(), 2);
                assert!(blocked[0].waiting_on.starts_with("recv("));
            }
            other => panic!("expected Deadlock, got {other}"),
        }
    }

    #[test]
    fn tampered_plan_gate_is_a_gate_mismatch() {
        let c = qft(6);
        let layout = Layout::new(6, 4);
        let mut plan = comm_avoid(&c, &layout, Strategy::Greedy, &ByteOracle)
            .with_layout_restored();
        // Flip one emitted gate's target.
        let idx = plan
            .steps
            .iter()
            .position(|s| matches!(s, PlanStep::Gate(Gate::H(_))))
            .unwrap();
        if let PlanStep::Gate(Gate::H(q)) = &mut plan.steps[idx] {
            *q = (*q + 1) % 6;
        }
        match verify_plan(&plan, Some(&c), 4, &VerifyOptions::default()).unwrap_err() {
            VerifyError::GateMismatch { .. } | VerifyError::LayoutDrift { .. } => {}
            other => panic!("expected GateMismatch, got {other}"),
        }
    }
}
