//! A schedule-exploring concurrency checker (a mini-loom).
//!
//! The mailbox channels and worker pool in `qse-util` call
//! [`qse_util::sync::sync_point`] at every operation where thread
//! interleaving matters. In production that hook is a relaxed atomic
//! load. Here we install a [`ScheduleHook`] that serializes *participant*
//! threads onto a token-passing scheduler: exactly one participant runs
//! at a time, and at every sync point, blocking receive, and channel
//! notification the scheduler makes a recorded decision about who runs
//! next. Enumerating those decisions enumerates interleavings.
//!
//! Two exploration modes:
//!
//! * **Exhaustive** ([`Explorer::exhaustive`]) — depth-first search over
//!   the decision tree with a preemption bound (involuntary context
//!   switches per schedule), the standard trick that keeps the tree
//!   tractable while still finding almost all real bugs. Practical for
//!   fixtures with ≤ 3 participant threads.
//! * **Seeded random** ([`Explorer::random`]) — each iteration draws its
//!   decisions from a [`SplitMix64`] stream seeded deterministically
//!   from the base seed and the iteration index. A failure reports the
//!   per-iteration seed; `Explorer::random(that_seed, 1)` replays the
//!   exact failing schedule.
//!
//! Blocking receives are *modelled*: when every participant is blocked,
//! the scheduler wakes them all with a modelled timeout instead of
//! letting a wall-clock deadline pass, so explorations are fast and
//! deterministic. Panics anywhere in the fixture (assertion failures
//! included) are caught and reported as the failing schedule.

use qse_util::rng::{Rng, SplitMix64};
use qse_util::sync::{self, ScheduleHook, SyncOp};
use std::cell::Cell;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::{Arc, Condvar, Mutex, MutexGuard};
use std::thread::JoinHandle;

thread_local! {
    /// The participant id of the current thread, when it is managed by
    /// the active exploration. Pool workers and other helper threads
    /// never set this, so instrumentation stays a no-op for them.
    static PARTICIPANT: Cell<Option<usize>> = const { Cell::new(None) };
}

/// Distinct offsets per iteration keep random-mode seeds independent.
const SEED_STRIDE: u64 = 0x9E37_79B9_7F4A_7C15;

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum TState {
    /// Ready to run, waiting for the token.
    Runnable,
    /// Holds the token.
    Running,
    /// Waiting for a notification on this channel id.
    Blocked(u64),
    /// Returned from its closure.
    Finished,
}

struct Inner {
    state: Vec<TState>,
    /// Set when a blocked thread was woken by the modelled global
    /// timeout rather than a notification.
    timed_out: Vec<bool>,
    current: Option<usize>,
    /// Decisions to replay before free choice begins.
    script: Vec<usize>,
    cursor: usize,
    /// Every decision made this run: `(alternatives, chosen)`.
    trace: Vec<(usize, usize)>,
    rng: Option<SplitMix64>,
    preemptions: usize,
    max_preemptions: usize,
    /// A participant panicked: release every wait so threads free-run
    /// to completion and the run can be torn down.
    aborted: bool,
    panics: Vec<String>,
}

impl Inner {
    /// Makes one scheduling decision among `alts` alternatives:
    /// scripted prefix first, then the RNG (random mode) or alternative
    /// 0 (exhaustive DFS). Every decision is recorded for backtracking
    /// and replay.
    fn choose(&mut self, alts: usize) -> usize {
        let c = if self.cursor < self.script.len() {
            self.script[self.cursor].min(alts - 1)
        } else if let Some(rng) = &mut self.rng {
            (rng.next_u64() % alts as u64) as usize
        } else {
            0
        };
        self.cursor += 1;
        self.trace.push((alts, c));
        c
    }

    fn runnable(&self) -> Vec<usize> {
        (0..self.state.len())
            .filter(|&i| matches!(self.state[i], TState::Runnable))
            .collect()
    }

    fn blocked(&self) -> Vec<usize> {
        (0..self.state.len())
            .filter(|&i| matches!(self.state[i], TState::Blocked(_)))
            .collect()
    }

    /// Hands the token to a runnable participant after the current one
    /// gave it up voluntarily (blocked or finished). When nothing is
    /// runnable but threads are blocked, no notification can ever come
    /// (only participants notify these channels), so the scheduler
    /// models a receive timeout: every blocked thread wakes with
    /// `timed_out` set and one of them is chosen to run.
    fn schedule_next(&mut self) {
        let cands = self.runnable();
        if cands.is_empty() {
            let blocked = self.blocked();
            if blocked.is_empty() {
                self.current = None;
                return;
            }
            for &b in &blocked {
                self.state[b] = TState::Runnable;
                self.timed_out[b] = true;
            }
            let idx = if blocked.len() > 1 {
                self.choose(blocked.len())
            } else {
                0
            };
            self.state[blocked[idx]] = TState::Running;
            self.current = Some(blocked[idx]);
            return;
        }
        let idx = if cands.len() > 1 {
            self.choose(cands.len())
        } else {
            0
        };
        self.state[cands[idx]] = TState::Running;
        self.current = Some(cands[idx]);
    }
}

struct Scheduler {
    inner: Mutex<Inner>,
    cv: Condvar,
}

impl Scheduler {
    fn lock(&self) -> MutexGuard<'_, Inner> {
        self.inner.lock().unwrap_or_else(|e| e.into_inner())
    }

    fn wait_for_turn<'a>(
        &'a self,
        mut guard: MutexGuard<'a, Inner>,
        me: usize,
    ) -> MutexGuard<'a, Inner> {
        while guard.current != Some(me) && !guard.aborted {
            guard = self.cv.wait(guard).unwrap_or_else(|e| e.into_inner());
        }
        guard
    }

    /// A preemption point: the scheduler may switch to another runnable
    /// participant (counted against the preemption bound) or let the
    /// caller continue.
    fn yield_point(&self, me: usize) {
        let mut inner = self.lock();
        if inner.aborted {
            return;
        }
        let mut cands = inner.runnable();
        cands.push(me);
        cands.sort_unstable();
        if inner.preemptions >= inner.max_preemptions {
            cands = vec![me];
        }
        let idx = if cands.len() > 1 {
            inner.choose(cands.len())
        } else {
            0
        };
        let next = cands[idx];
        if next == me {
            return;
        }
        inner.preemptions += 1;
        inner.state[me] = TState::Runnable;
        inner.state[next] = TState::Running;
        inner.current = Some(next);
        self.cv.notify_all();
        let mut inner = self.wait_for_turn(inner, me);
        if !inner.aborted {
            inner.state[me] = TState::Running;
        }
    }

    /// Blocks `me` until channel `chan` is notified (returns `true`) or
    /// the modelled global timeout fires (returns `false`).
    fn block_on(&self, me: usize, chan: u64) -> bool {
        let mut inner = self.lock();
        if inner.aborted {
            return false;
        }
        inner.state[me] = TState::Blocked(chan);
        inner.timed_out[me] = false;
        inner.schedule_next();
        self.cv.notify_all();
        let mut inner = self.wait_for_turn(inner, me);
        if inner.aborted {
            return false;
        }
        inner.state[me] = TState::Running;
        !inner.timed_out[me]
    }

    /// A channel notification. Waking *which* blocked receiver is itself
    /// a recorded scheduling decision when the notifier participates;
    /// notifications from outside threads conservatively wake everyone.
    /// With no waiter the notification is lost — condvar semantics, and
    /// exactly the nondeterminism the mailbox re-check loop must absorb.
    fn notify(&self, chan: u64, all: bool) {
        let mut inner = self.lock();
        if inner.aborted {
            return;
        }
        let waiters: Vec<usize> = (0..inner.state.len())
            .filter(|&i| inner.state[i] == TState::Blocked(chan))
            .collect();
        if waiters.is_empty() {
            return;
        }
        let from_participant = PARTICIPANT.with(|p| p.get()).is_some();
        if all || !from_participant {
            for &w in &waiters {
                inner.state[w] = TState::Runnable;
                inner.timed_out[w] = false;
            }
        } else {
            let idx = if waiters.len() > 1 {
                inner.choose(waiters.len())
            } else {
                0
            };
            inner.state[waiters[idx]] = TState::Runnable;
            inner.timed_out[waiters[idx]] = false;
        }
        if inner.current.is_none() {
            inner.schedule_next();
            self.cv.notify_all();
        }
    }

    /// Called when a participant's closure returns.
    fn finish(&self, me: usize) {
        let mut inner = self.lock();
        inner.state[me] = TState::Finished;
        if !inner.aborted {
            inner.schedule_next();
        }
        self.cv.notify_all();
    }

    /// Called when a participant's closure panics: record the payload
    /// and release every wait so remaining threads free-run to the end.
    fn abort(&self, me: usize, message: String) {
        let mut inner = self.lock();
        inner.panics.push(message);
        inner.state[me] = TState::Finished;
        inner.aborted = true;
        self.cv.notify_all();
    }

    fn add_participant(&self) -> usize {
        let mut inner = self.lock();
        let id = inner.state.len();
        inner.state.push(TState::Runnable);
        inner.timed_out.push(false);
        id
    }

    /// Parks a freshly spawned participant until it is first scheduled.
    fn start(&self, me: usize) {
        let inner = self.lock();
        let mut inner = self.wait_for_turn(inner, me);
        if !inner.aborted {
            inner.state[me] = TState::Running;
        }
    }
}

struct SchedulerHook {
    sched: Arc<Scheduler>,
}

impl ScheduleHook for SchedulerHook {
    fn is_participant(&self) -> bool {
        PARTICIPANT.with(|p| p.get()).is_some()
    }

    fn sync_point(&self, _op: SyncOp) {
        if let Some(me) = PARTICIPANT.with(|p| p.get()) {
            self.sched.yield_point(me);
        }
    }

    fn wait_channel(&self, chan: u64) -> bool {
        match PARTICIPANT.with(|p| p.get()) {
            Some(me) => self.sched.block_on(me, chan),
            None => false,
        }
    }

    fn notify_channel(&self, chan: u64, all: bool) {
        self.sched.notify(chan, all);
    }
}

/// Handle passed to an exploration body for spawning participant
/// threads. The body itself runs as participant 0.
pub struct Ctl {
    sched: Arc<Scheduler>,
    handles: Mutex<Vec<JoinHandle<()>>>,
}

impl Ctl {
    /// Spawns a participant thread running `f` under the controlled
    /// scheduler. The thread does not run until the scheduler first
    /// hands it the token at a decision point.
    pub fn spawn<F>(&self, f: F)
    where
        F: FnOnce() + Send + 'static,
    {
        let id = self.sched.add_participant();
        let sched = Arc::clone(&self.sched);
        let handle = std::thread::spawn(move || {
            PARTICIPANT.with(|p| p.set(Some(id)));
            sched.start(id);
            match catch_unwind(AssertUnwindSafe(f)) {
                Ok(()) => sched.finish(id),
                Err(payload) => sched.abort(id, panic_message(&*payload)),
            }
            PARTICIPANT.with(|p| p.set(None));
        });
        self.handles
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .push(handle);
    }
}

fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

/// A failing schedule, with everything needed to reproduce it.
#[derive(Debug, Clone)]
pub struct ScheduleFailure {
    /// Per-iteration seed (random mode); replay with
    /// `Explorer::random(seed, 1)`.
    pub seed: Option<u64>,
    /// The decision sequence of the failing run (exhaustive mode replay).
    pub script: Vec<usize>,
    /// Schedules executed up to and including the failing one.
    pub schedules: usize,
    /// The first panic message observed on the failing schedule.
    pub message: String,
}

impl std::fmt::Display for ScheduleFailure {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "schedule {} failed: {}",
            self.schedules, self.message
        )?;
        match self.seed {
            Some(seed) => write!(f, "; replay with seed {seed}"),
            None => write!(f, "; replay with script {:?}", self.script),
        }
    }
}

impl std::error::Error for ScheduleFailure {}

enum Mode {
    Exhaustive,
    Random { seed: u64, iterations: usize },
}

/// Explores thread interleavings of an instrumented fixture.
pub struct Explorer {
    mode: Mode,
    max_preemptions: usize,
    max_schedules: usize,
}

/// Serializes explorations process-wide: the schedule hook is a global,
/// so two concurrent explorations would corrupt each other.
fn exploration_lock() -> &'static Mutex<()> {
    static LOCK: std::sync::OnceLock<Mutex<()>> = std::sync::OnceLock::new();
    LOCK.get_or_init(|| Mutex::new(()))
}

impl Explorer {
    /// Exhaustive bounded-preemption DFS — use for fixtures with at most
    /// three participant threads (the tree grows steeply beyond that).
    pub fn exhaustive() -> Self {
        Explorer {
            mode: Mode::Exhaustive,
            max_preemptions: 2,
            max_schedules: 20_000,
        }
    }

    /// Seeded random exploration: `iterations` schedules drawn from a
    /// deterministic per-iteration seed stream. Use above three threads,
    /// and with `iterations == 1` to replay a reported failing seed.
    pub fn random(seed: u64, iterations: usize) -> Self {
        Explorer {
            mode: Mode::Random { seed, iterations },
            max_preemptions: 2,
            max_schedules: iterations,
        }
    }

    /// Picks the mode the way the checker recommends: exhaustive up to
    /// three participant threads, seeded random above.
    pub fn for_threads(threads: usize, seed: u64) -> Self {
        if threads <= 3 {
            Explorer::exhaustive()
        } else {
            Explorer::random(seed, 500)
        }
    }

    /// Overrides the involuntary-context-switch bound (default 2).
    pub fn with_preemption_bound(mut self, bound: usize) -> Self {
        self.max_preemptions = bound;
        self
    }

    /// Runs `f` under every explored schedule. Returns the number of
    /// schedules explored, or the first failing schedule.
    ///
    /// `f` runs once per schedule as participant 0; threads it spawns
    /// through [`Ctl::spawn`] become participants. Any panic (assertion
    /// failures included) in any participant fails the schedule.
    pub fn explore<F>(&self, f: F) -> Result<usize, ScheduleFailure>
    where
        F: Fn(&Ctl),
    {
        let _guard = exploration_lock().lock().unwrap_or_else(|e| e.into_inner());
        let _quiet = QuietPanics::install();
        match &self.mode {
            Mode::Exhaustive => {
                let mut script: Vec<usize> = Vec::new();
                let mut runs = 0usize;
                loop {
                    let out = run_one(script.clone(), None, self.max_preemptions, &f);
                    runs += 1;
                    if let Some(message) = out.panic {
                        return Err(ScheduleFailure {
                            seed: None,
                            script: out.trace.iter().map(|&(_, c)| c).collect(),
                            schedules: runs,
                            message,
                        });
                    }
                    // DFS backtrack: bump the last decision that still
                    // has an untried alternative; drop everything after.
                    let next = out
                        .trace
                        .iter()
                        .rposition(|&(alts, chosen)| chosen + 1 < alts);
                    match next {
                        Some(i) => {
                            script = out.trace[..i].iter().map(|&(_, c)| c).collect();
                            script.push(out.trace[i].1 + 1);
                        }
                        None => return Ok(runs),
                    }
                    if runs >= self.max_schedules {
                        return Ok(runs);
                    }
                }
            }
            Mode::Random { seed, iterations } => {
                for i in 0..*iterations {
                    let iter_seed = seed.wrapping_add((i as u64).wrapping_mul(SEED_STRIDE));
                    let rng = SplitMix64::seed_from_u64(iter_seed);
                    let out = run_one(Vec::new(), Some(rng), self.max_preemptions, &f);
                    if let Some(message) = out.panic {
                        return Err(ScheduleFailure {
                            seed: Some(iter_seed),
                            script: out.trace.iter().map(|&(_, c)| c).collect(),
                            schedules: i + 1,
                            message,
                        });
                    }
                }
                Ok(*iterations)
            }
        }
    }

    /// Replays one exact decision sequence (from
    /// [`ScheduleFailure::script`]) under this explorer's preemption
    /// bound — the bound shapes which decision points exist, so it must
    /// match the exploring run. Returns the panic message if the
    /// schedule still fails.
    pub fn replay<F>(&self, script: Vec<usize>, f: F) -> Option<String>
    where
        F: Fn(&Ctl),
    {
        let _guard = exploration_lock().lock().unwrap_or_else(|e| e.into_inner());
        let _quiet = QuietPanics::install();
        run_one(script, None, self.max_preemptions, &f).panic
    }
}

/// RAII silencer for the global panic hook: exploration *intentionally*
/// drives fixtures to panic, and the default hook would spray every
/// probed schedule's backtrace onto stderr. The exploration lock is held
/// for the guard's whole lifetime, so no concurrent exploration races
/// the swap; the previous hook is restored on drop.
struct QuietPanics {
    prev: Option<Box<dyn Fn(&std::panic::PanicHookInfo<'_>) + Sync + Send + 'static>>,
}

impl QuietPanics {
    fn install() -> Self {
        let prev = std::panic::take_hook();
        std::panic::set_hook(Box::new(|_| {}));
        QuietPanics { prev: Some(prev) }
    }
}

impl Drop for QuietPanics {
    fn drop(&mut self) {
        if let Some(prev) = self.prev.take() {
            std::panic::set_hook(prev);
        }
    }
}

struct RunOutcome {
    trace: Vec<(usize, usize)>,
    panic: Option<String>,
}

fn run_one<F>(
    script: Vec<usize>,
    rng: Option<SplitMix64>,
    max_preemptions: usize,
    f: &F,
) -> RunOutcome
where
    F: Fn(&Ctl),
{
    let sched = Arc::new(Scheduler {
        inner: Mutex::new(Inner {
            state: vec![TState::Running],
            timed_out: vec![false],
            current: Some(0),
            script,
            cursor: 0,
            trace: Vec::new(),
            rng,
            preemptions: 0,
            max_preemptions,
            aborted: false,
            panics: Vec::new(),
        }),
        cv: Condvar::new(),
    });
    let hook = Arc::new(SchedulerHook {
        sched: Arc::clone(&sched),
    });
    sync::install(hook);
    PARTICIPANT.with(|p| p.set(Some(0)));

    let ctl = Ctl {
        sched: Arc::clone(&sched),
        handles: Mutex::new(Vec::new()),
    };
    match catch_unwind(AssertUnwindSafe(|| f(&ctl))) {
        Ok(()) => sched.finish(0),
        Err(payload) => sched.abort(0, panic_message(&*payload)),
    }
    PARTICIPANT.with(|p| p.set(None));

    let handles = std::mem::take(&mut *ctl.handles.lock().unwrap_or_else(|e| e.into_inner()));
    for h in handles {
        // Participant panics are already caught and recorded inside the
        // thread wrapper; a join error here would mean the wrapper
        // itself died, which abort() has already made survivable.
        let _ = h.join();
    }
    sync::uninstall();

    let inner = sched.lock();
    RunOutcome {
        trace: inner.trace.clone(),
        panic: inner.panics.first().cloned(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn single_thread_explores_one_schedule() {
        let n = Explorer::exhaustive()
            .explore(|_ctl| {
                sync::sync_point(SyncOp::User("solo"));
            })
            .unwrap();
        assert_eq!(n, 1);
    }

    #[test]
    fn panic_in_body_is_reported_not_propagated() {
        let err = Explorer::exhaustive()
            .explore(|_ctl| panic!("body panicked on purpose"))
            .unwrap_err();
        assert!(err.message.contains("body panicked on purpose"));
        assert_eq!(err.schedules, 1);
    }

    #[test]
    fn spawned_threads_actually_run() {
        let runs = Explorer::exhaustive()
            .explore(|ctl| {
                let counter = Arc::new(AtomicUsize::new(0));
                for _ in 0..2 {
                    let counter = Arc::clone(&counter);
                    ctl.spawn(move || {
                        counter.fetch_add(1, Ordering::SeqCst);
                        sync::sync_point(SyncOp::User("after add"));
                    });
                }
            })
            .unwrap();
        assert!(runs >= 1);
    }

    #[test]
    fn failure_display_mentions_replay_handle() {
        let fail = ScheduleFailure {
            seed: Some(42),
            script: vec![],
            schedules: 7,
            message: "boom".into(),
        };
        let text = fail.to_string();
        assert!(text.contains("replay with seed 42"));
        let fail = ScheduleFailure {
            seed: None,
            script: vec![1, 0, 2],
            schedules: 3,
            message: "boom".into(),
        };
        assert!(fail.to_string().contains("[1, 0, 2]"));
    }
}
