//! A source lint pass for the repo's own conventions.
//!
//! A deliberately small line/token scanner — no parser dependency —
//! enforcing six rules that the type system cannot:
//!
//! * **R1 `PanicInLib`** — no `.unwrap()`, `.expect(`, or `panic!` in
//!   non-test library code of `qse-comm`, `qse-statevec`, and
//!   `qse-machine`: the crates whose errors must surface as typed
//!   [`qse_comm::CommError`] values rather than rank-thread panics.
//!   (`assert!`, `debug_assert!`, and `unreachable!` remain allowed —
//!   invariant violations *should* panic.)
//! * **R2 `InstantInMachine`** — no `Instant::now()` in `qse-machine`:
//!   the analytic model must stay a pure function of its inputs, never
//!   of the wall clock.
//! * **R3 `UndocumentedPub`** — every `pub fn` in `qse-comm` carries a
//!   doc comment; the communication layer is the API other crates build
//!   on.
//! * **R4 `AssertInMeasure`** — no `assert!`/`assert_eq!`/`assert_ne!`
//!   in the measurement-path files of `qse-statevec` (`measure.rs`).
//!   Measurement outcomes depend on caller-supplied randomness and
//!   state, so "impossible" conditions there are reachable by callers
//!   and must surface as typed `MeasureError` values — an `assert!` is
//!   error handling in disguise. (`debug_assert!` remains allowed:
//!   true internal invariants may still self-check in debug builds.)
//! * **R5 `UnsafeWithoutSafety`** — every `unsafe` keyword in the SIMD
//!   storage kernels (`qse-statevec/src/storage/{soa,aos}.rs`) and the
//!   thread-pool (`qse-util/src/parallel.rs`) must be justified by a
//!   `SAFETY:` comment on the same line or in the contiguous
//!   comment/attribute block directly above it. These are the only
//!   files in the tree allowed to contain `unsafe` at all; each use
//!   must say why it is sound.
//! * **R6 `TruncatingCast`** — no `as usize` / `as u32` casts in the
//!   index arithmetic of `qse-comm` and `qse-statevec` library code:
//!   on a 32-bit host a silent `u64 → usize` truncation turns an
//!   amplitude index into a wrong-but-valid one. Convert with
//!   `try_into()`/`u64::from`, route through an audited helper, or
//!   carry a documented `// qse-lint: allow`.
//!
//! The scanner strips `//` comments, `/* */` blocks, and string/char
//! literals before matching, and skips `#[cfg(test)]` regions by brace
//! counting. A trailing `// qse-lint: allow` escape-hatches one line.

use std::fmt;
use std::path::{Path, PathBuf};

/// Which convention a violation breaks.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Rule {
    /// `.unwrap()` / `.expect(` / `panic!` in library code.
    PanicInLib,
    /// `Instant::now()` in the analytic-model crate.
    InstantInMachine,
    /// `pub fn` without a doc comment in `qse-comm`.
    UndocumentedPub,
    /// `assert!` used as error handling in statevec measure paths.
    AssertInMeasure,
    /// `unsafe` without an adjacent `SAFETY:` comment in the files that
    /// are allowed to contain `unsafe`.
    UnsafeWithoutSafety,
    /// Potentially truncating `as usize` / `as u32` in index arithmetic.
    TruncatingCast,
}

impl Rule {
    /// Short identifier used in reports.
    pub fn code(self) -> &'static str {
        match self {
            Rule::PanicInLib => "panic-in-lib",
            Rule::InstantInMachine => "instant-in-machine",
            Rule::UndocumentedPub => "undocumented-pub",
            Rule::AssertInMeasure => "assert-in-measure",
            Rule::UnsafeWithoutSafety => "unsafe-without-safety",
            Rule::TruncatingCast => "truncating-cast",
        }
    }
}

/// One lint finding.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Violation {
    /// Workspace-relative path of the offending file.
    pub file: String,
    /// 1-based line number.
    pub line: usize,
    /// The broken rule.
    pub rule: Rule,
    /// Human-readable description.
    pub message: String,
}

impl fmt::Display for Violation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}:{}: [{}] {}",
            self.file,
            self.line,
            self.rule.code(),
            self.message
        )
    }
}

/// The crates R1 applies to: their `src/` trees must not panic on
/// recoverable errors.
const NO_PANIC_CRATES: [&str; 3] = ["comm", "statevec", "machine"];

fn crate_of(relpath: &str) -> Option<&str> {
    let rest = relpath.strip_prefix("crates/")?;
    let (name, tail) = rest.split_once('/')?;
    tail.starts_with("src/").then_some(name)
}

/// Strips comments and string/char literals from one line, carrying
/// block-comment state across lines. Raw strings are handled only to
/// the depth the tree actually uses (no `#` guards).
fn strip_line(line: &str, in_block_comment: &mut bool) -> String {
    let mut out = String::with_capacity(line.len());
    let bytes = line.as_bytes();
    let mut i = 0;
    while i < bytes.len() {
        if *in_block_comment {
            if bytes[i] == b'*' && i + 1 < bytes.len() && bytes[i + 1] == b'/' {
                *in_block_comment = false;
                i += 2;
            } else {
                i += 1;
            }
            continue;
        }
        match bytes[i] {
            b'/' if i + 1 < bytes.len() && bytes[i + 1] == b'/' => break,
            b'/' if i + 1 < bytes.len() && bytes[i + 1] == b'*' => {
                *in_block_comment = true;
                i += 2;
            }
            b'"' => {
                i += 1;
                while i < bytes.len() {
                    match bytes[i] {
                        b'\\' => i += 2,
                        b'"' => {
                            i += 1;
                            break;
                        }
                        _ => i += 1,
                    }
                }
                out.push_str("\"\"");
            }
            b'\'' => {
                // Either a char literal ('x', '\n') or a lifetime ('a).
                // A closing quote within 3 bytes means char literal.
                let close = bytes[i + 1..]
                    .iter()
                    .take(4)
                    .position(|&b| b == b'\'')
                    .map(|p| i + 1 + p);
                match close {
                    Some(end) => {
                        out.push_str("' '");
                        i = end + 1;
                    }
                    None => {
                        out.push('\'');
                        i += 1;
                    }
                }
            }
            b => {
                out.push(b as char);
                i += 1;
            }
        }
    }
    out
}

fn is_allowed(raw_line: &str, prev_raw: Option<&str>) -> bool {
    let marker = "qse-lint: allow";
    raw_line.contains(marker) || prev_raw.is_some_and(|p| p.contains(marker))
}

/// Does the stripped line declare a documentable public function?
/// (`pub(crate)` and narrower are internal — not covered by R3.)
fn declares_pub_fn(stripped: &str) -> bool {
    let t = stripped.trim_start();
    if !t.starts_with("pub ") {
        return false;
    }
    let after = t["pub ".len()..].trim_start();
    for prefix in ["fn ", "const fn ", "unsafe fn ", "async fn "] {
        if after.starts_with(prefix) {
            return true;
        }
    }
    // `pub const unsafe fn`, `pub unsafe extern "C" fn`, … — rare;
    // catch any `fn ` following only qualifier words.
    let words: Vec<&str> = after.split_whitespace().collect();
    let mut saw_qualifiers_only = true;
    for w in &words {
        if *w == "fn" || w.starts_with("fn") {
            return saw_qualifiers_only;
        }
        if !matches!(*w, "const" | "unsafe" | "async" | "extern" | "\"\"") {
            saw_qualifiers_only = false;
        }
    }
    false
}

/// Does the stripped line invoke a hard assertion macro? Matches
/// `assert!`, `assert_eq!`, and `assert_ne!` but not `debug_assert*!`
/// (the match must not be preceded by an identifier character).
fn invokes_hard_assert(stripped: &str) -> bool {
    for needle in ["assert!", "assert_eq!", "assert_ne!"] {
        let mut from = 0;
        while let Some(pos) = stripped[from..].find(needle) {
            let at = from + pos;
            let preceded_by_ident = at > 0 && {
                let b = stripped.as_bytes()[at - 1];
                b.is_ascii_alphanumeric() || b == b'_'
            };
            if !preceded_by_ident {
                return true;
            }
            from = at + needle.len();
        }
    }
    false
}

/// The only files in the tree permitted to contain `unsafe` at all;
/// R5 requires every use in them to carry a `SAFETY:` justification.
const UNSAFE_FILES: [&str; 3] = [
    "crates/statevec/src/storage/soa.rs",
    "crates/statevec/src/storage/aos.rs",
    "crates/util/src/parallel.rs",
];

/// Does the stripped line contain `needle` not embedded in a longer
/// identifier on either side?
fn contains_token(stripped: &str, needle: &str) -> bool {
    let mut from = 0;
    while let Some(pos) = stripped[from..].find(needle) {
        let at = from + pos;
        let ident = |b: u8| b.is_ascii_alphanumeric() || b == b'_';
        let before_ok = at == 0 || !ident(stripped.as_bytes()[at - 1]);
        let end = at + needle.len();
        let after_ok = end >= stripped.len() || !ident(stripped.as_bytes()[end]);
        if before_ok && after_ok {
            return true;
        }
        from = end;
    }
    false
}

/// Lints one file's contents. `relpath` is workspace-relative with `/`
/// separators (e.g. `crates/comm/src/universe.rs`); it decides which
/// rules apply.
pub fn lint_file(relpath: &str, content: &str) -> Vec<Violation> {
    let Some(crate_name) = crate_of(relpath) else {
        return Vec::new();
    };
    let check_panics = NO_PANIC_CRATES.contains(&crate_name);
    let check_instant = crate_name == "machine";
    let check_docs = crate_name == "comm";
    let check_measure_asserts = crate_name == "statevec" && relpath.ends_with("/measure.rs");
    let check_unsafe = UNSAFE_FILES.contains(&relpath);
    let check_casts = matches!(crate_name, "comm" | "statevec");
    if !(check_panics || check_instant || check_docs || check_unsafe || check_casts) {
        return Vec::new();
    }

    let mut violations = Vec::new();
    let mut in_block_comment = false;
    // Depth tracking for `#[cfg(test)]` regions: once the attribute is
    // seen, the next block `{ … }` (usually `mod tests`) is test code.
    let mut brace_depth: i64 = 0;
    let mut cfg_test_pending = false;
    let mut test_region_floor: Option<i64> = None;
    // R3 state: a doc comment (or doc + attributes) directly above.
    let mut doc_pending = false;
    // R5 state: a `SAFETY:` comment in the contiguous comment/attribute
    // block directly above.
    let mut safety_pending = false;
    let mut prev_raw: Option<&str> = None;

    for (idx, raw) in content.lines().enumerate() {
        let line_no = idx + 1;
        let was_in_block = in_block_comment;
        let stripped = strip_line(raw, &mut in_block_comment);
        let trimmed_raw = raw.trim_start();

        // Doc-comment adjacency for R3 (raw text: `///` lines are
        // comments and would be stripped).
        if trimmed_raw.starts_with("///") || trimmed_raw.starts_with("#[doc") {
            doc_pending = true;
        } else if trimmed_raw.starts_with("#[") || trimmed_raw.starts_with("#![") {
            // Attributes between the doc comment and the item keep it.
        } else if !stripped.trim().is_empty() {
            // consumed below by the pub fn check, then cleared
        }
        // R5: a `SAFETY:` comment anywhere in the contiguous comment
        // block above an `unsafe` justifies it.
        if trimmed_raw.starts_with("//") && trimmed_raw.contains("SAFETY:") {
            safety_pending = true;
        }

        if stripped.contains("#[cfg(test)]") || stripped.contains("#[cfg(all(test") {
            cfg_test_pending = true;
        }

        let in_test_region = test_region_floor.is_some();
        let allowed = is_allowed(raw, prev_raw);

        if !in_test_region && !was_in_block && !allowed {
            if check_panics {
                for (needle, what) in [
                    (".unwrap()", "`.unwrap()`"),
                    (".expect(", "`.expect(…)`"),
                    ("panic!", "`panic!`"),
                ] {
                    if stripped.contains(needle) {
                        violations.push(Violation {
                            file: relpath.to_string(),
                            line: line_no,
                            rule: Rule::PanicInLib,
                            message: format!(
                                "{what} in library code; return a typed error instead \
                                 (or `// qse-lint: allow` with justification)"
                            ),
                        });
                    }
                }
            }
            if check_instant && stripped.contains("Instant::now()") {
                violations.push(Violation {
                    file: relpath.to_string(),
                    line: line_no,
                    rule: Rule::InstantInMachine,
                    message: "`Instant::now()` in the analytic model; estimates must be \
                              pure functions of their inputs"
                        .to_string(),
                });
            }
            if check_measure_asserts && invokes_hard_assert(&stripped) {
                violations.push(Violation {
                    file: relpath.to_string(),
                    line: line_no,
                    rule: Rule::AssertInMeasure,
                    message: "`assert!` in a measure path is error handling in disguise; \
                              return a typed `MeasureError` instead \
                              (or `// qse-lint: allow` with justification)"
                        .to_string(),
                });
            }
            if check_unsafe
                && contains_token(&stripped, "unsafe")
                && !safety_pending
                && !raw.contains("SAFETY:")
            {
                violations.push(Violation {
                    file: relpath.to_string(),
                    line: line_no,
                    rule: Rule::UnsafeWithoutSafety,
                    message: "`unsafe` without a `SAFETY:` comment on the same line or \
                              directly above; say why this use is sound"
                        .to_string(),
                });
            }
            if check_casts {
                for needle in ["as usize", "as u32"] {
                    if contains_token(&stripped, needle) {
                        violations.push(Violation {
                            file: relpath.to_string(),
                            line: line_no,
                            rule: Rule::TruncatingCast,
                            message: format!(
                                "`{needle}` may truncate on a 32-bit host; use \
                                 `try_into()`, an audited helper, or \
                                 `// qse-lint: allow` with justification"
                            ),
                        });
                    }
                }
            }
            if check_docs && declares_pub_fn(&stripped) && !doc_pending {
                violations.push(Violation {
                    file: relpath.to_string(),
                    line: line_no,
                    rule: Rule::UndocumentedPub,
                    message: "public function without a doc comment".to_string(),
                });
            }
        }

        // Clear doc/safety adjacency on any substantive non-attribute line.
        if !trimmed_raw.starts_with("///")
            && !trimmed_raw.starts_with("#[")
            && !trimmed_raw.starts_with("#![")
            && !stripped.trim().is_empty()
        {
            doc_pending = false;
            safety_pending = false;
        }

        // Brace accounting (on stripped text, so braces in strings and
        // comments don't count).
        for b in stripped.bytes() {
            match b {
                b'{' => {
                    brace_depth += 1;
                    if cfg_test_pending && test_region_floor.is_none() {
                        test_region_floor = Some(brace_depth);
                        cfg_test_pending = false;
                    }
                }
                b'}' => {
                    if let Some(floor) = test_region_floor {
                        if brace_depth == floor {
                            test_region_floor = None;
                        }
                    }
                    brace_depth -= 1;
                }
                b';' => {
                    // `#[cfg(test)] use …;` — attribute consumed by a
                    // braceless item.
                    if cfg_test_pending && test_region_floor.is_none() {
                        cfg_test_pending = false;
                    }
                }
                _ => {}
            }
        }

        prev_raw = Some(raw);
    }
    violations
}

/// Walks up from `start` to the directory whose `Cargo.toml` declares
/// `[workspace]`, so the lint runs correctly from any working directory.
pub fn find_workspace_root(start: &Path) -> Option<PathBuf> {
    let mut dir = Some(start.to_path_buf());
    while let Some(d) = dir {
        let manifest = d.join("Cargo.toml");
        if let Ok(text) = std::fs::read_to_string(&manifest) {
            if text.contains("[workspace]") {
                return Some(d);
            }
        }
        dir = d.parent().map(Path::to_path_buf);
    }
    None
}

fn walk_rs_files(dir: &Path, out: &mut Vec<PathBuf>) {
    let Ok(entries) = std::fs::read_dir(dir) else {
        return;
    };
    let mut paths: Vec<PathBuf> = entries.flatten().map(|e| e.path()).collect();
    paths.sort();
    for path in paths {
        if path.is_dir() {
            walk_rs_files(&path, out);
        } else if path.extension().is_some_and(|e| e == "rs") {
            out.push(path);
        }
    }
}

/// Lints every `src/` file of every crate under `root/crates`, returning
/// all violations sorted by path and line.
pub fn lint_tree(root: &Path) -> std::io::Result<Vec<Violation>> {
    let mut files = Vec::new();
    let crates_dir = root.join("crates");
    let mut crate_dirs: Vec<PathBuf> = std::fs::read_dir(&crates_dir)?
        .flatten()
        .map(|e| e.path())
        .filter(|p| p.is_dir())
        .collect();
    crate_dirs.sort();
    for crate_dir in crate_dirs {
        walk_rs_files(&crate_dir.join("src"), &mut files);
    }
    let mut violations = Vec::new();
    for path in files {
        let rel = path
            .strip_prefix(root)
            .unwrap_or(&path)
            .to_string_lossy()
            .replace('\\', "/");
        let content = std::fs::read_to_string(&path)?;
        violations.extend(lint_file(&rel, &content));
    }
    Ok(violations)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unwrap_in_library_code_flagged() {
        let v = lint_file(
            "crates/comm/src/fake.rs",
            "pub(crate) fn f(x: Option<u8>) -> u8 {\n    x.unwrap()\n}\n",
        );
        assert_eq!(v.len(), 1);
        assert_eq!(v[0].rule, Rule::PanicInLib);
        assert_eq!(v[0].line, 2);
    }

    #[test]
    fn expect_and_panic_flagged_assert_allowed() {
        let src = "fn f() {\n    assert!(true);\n    debug_assert_eq!(1, 1);\n    \
                   unreachable!(\"x\");\n    y.expect(\"boom\");\n    panic!(\"no\");\n}\n";
        let v = lint_file("crates/statevec/src/fake.rs", src);
        let rules: Vec<usize> = v.iter().map(|x| x.line).collect();
        assert_eq!(rules, vec![5, 6]);
    }

    #[test]
    fn test_module_is_exempt() {
        let src = "fn lib() {}\n#[cfg(test)]\nmod tests {\n    #[test]\n    fn t() {\n        \
                   Some(1).unwrap();\n    }\n}\n";
        assert!(lint_file("crates/comm/src/fake.rs", src).is_empty());
    }

    #[test]
    fn code_after_test_module_is_linted_again() {
        let src = "#[cfg(test)]\nmod tests {\n    fn t() { x.unwrap(); }\n}\n\
                   fn after() { y.unwrap(); }\n";
        let v = lint_file("crates/comm/src/fake.rs", src);
        assert_eq!(v.len(), 1);
        assert_eq!(v[0].line, 5);
    }

    #[test]
    fn strings_and_comments_do_not_trip_the_scanner() {
        let src = "fn f() {\n    let s = \".unwrap()\";\n    // x.unwrap()\n    \
                   /* panic!(\"no\") */\n    let c = '\\'';\n}\n";
        assert!(lint_file("crates/comm/src/fake.rs", src).is_empty());
    }

    #[test]
    fn allow_marker_suppresses() {
        let src = "fn f() {\n    x.unwrap() // qse-lint: allow — startup only\n}\n";
        assert!(lint_file("crates/comm/src/fake.rs", src).is_empty());
        let src = "fn f() {\n    // qse-lint: allow — lock poisoning is fatal\n    x.unwrap()\n}\n";
        assert!(lint_file("crates/comm/src/fake.rs", src).is_empty());
    }

    #[test]
    fn instant_only_flagged_in_machine() {
        let src = "fn f() { let t = Instant::now(); }\n";
        assert_eq!(lint_file("crates/machine/src/fake.rs", src).len(), 1);
        assert!(lint_file("crates/comm/src/fake.rs", src).is_empty());
    }

    #[test]
    fn undocumented_pub_fn_flagged_in_comm_only() {
        let src = "pub fn naked() {}\n";
        let v = lint_file("crates/comm/src/fake.rs", src);
        assert_eq!(v.len(), 1);
        assert_eq!(v[0].rule, Rule::UndocumentedPub);
        assert!(lint_file("crates/statevec/src/fake.rs", src).is_empty());
    }

    #[test]
    fn documented_pub_fn_passes_even_with_attributes() {
        let src = "/// Does the thing.\n#[inline]\npub fn documented() {}\n";
        assert!(lint_file("crates/comm/src/fake.rs", src).is_empty());
        let src = "/// Docs.\npub const fn k() -> u8 { 0 }\n";
        assert!(lint_file("crates/comm/src/fake.rs", src).is_empty());
    }

    #[test]
    fn pub_crate_fn_needs_no_docs() {
        let src = "pub(crate) fn internal() {}\n";
        assert!(lint_file("crates/comm/src/fake.rs", src).is_empty());
    }

    #[test]
    fn unlinted_crates_and_paths_ignored() {
        let src = "pub fn f() { x.unwrap(); panic!(); }\n";
        assert!(lint_file("crates/core/src/fake.rs", src).is_empty());
        assert!(lint_file("crates/comm/tests/fake.rs", src).is_empty());
        assert!(lint_file("src/lib.rs", src).is_empty());
    }

    #[test]
    fn doc_examples_do_not_count_as_violations() {
        let src = "/// ```\n/// x.unwrap();\n/// ```\npub fn documented() {}\n";
        assert!(lint_file("crates/comm/src/fake.rs", src).is_empty());
    }

    #[test]
    fn assert_in_measure_path_flagged() {
        let src = "pub fn collapse() {\n    assert!(p > 1e-15, \"zero-probability\");\n}\n";
        let v = lint_file("crates/statevec/src/measure.rs", src);
        assert_eq!(v.len(), 1);
        assert_eq!(v[0].rule, Rule::AssertInMeasure);
        assert_eq!(v[0].line, 2);
        // The same assert anywhere else in statevec is invariant checking.
        assert!(lint_file("crates/statevec/src/single.rs", src).is_empty());
    }

    #[test]
    fn assert_eq_and_ne_flagged_in_measure_debug_assert_allowed() {
        let src = "fn f() {\n    debug_assert!(x > 0.0);\n    debug_assert_eq!(a, b);\n    \
                   assert_eq!(a, b);\n    assert_ne!(a, c);\n}\n";
        let v = lint_file("crates/statevec/src/measure.rs", src);
        let lines: Vec<usize> = v
            .iter()
            .filter(|x| x.rule == Rule::AssertInMeasure)
            .map(|x| x.line)
            .collect();
        assert_eq!(lines, vec![4, 5]);
    }

    #[test]
    fn measure_asserts_exempt_in_tests_and_with_allow_marker() {
        let src = "fn lib() {}\n#[cfg(test)]\nmod tests {\n    #[test]\n    fn t() {\n        \
                   assert!(true);\n        assert_eq!(1, 1);\n    }\n}\n";
        assert!(lint_file("crates/statevec/src/measure.rs", src).is_empty());
        let src = "fn f() {\n    assert!(invariant) // qse-lint: allow — structural invariant\n}\n";
        assert!(lint_file("crates/statevec/src/measure.rs", src).is_empty());
    }

    #[test]
    fn unsafe_without_safety_comment_flagged() {
        let src = "fn f(p: *const u8) -> u8 {\n    unsafe { *p }\n}\n";
        let v = lint_file("crates/util/src/parallel.rs", src);
        assert_eq!(v.len(), 1);
        assert_eq!(v[0].rule, Rule::UnsafeWithoutSafety);
        assert_eq!(v[0].line, 2);
        // The same code outside the unsafe-permitted files is not R5's
        // concern (nothing else should contain `unsafe` at all).
        assert!(lint_file("crates/util/src/sync.rs", src).is_empty());
    }

    #[test]
    fn safety_comment_justifies_unsafe_same_line_or_block_above() {
        let src = "fn f(p: *const u8) -> u8 {\n    \
                   unsafe { *p } // SAFETY: caller pins p\n}\n";
        assert!(lint_file("crates/util/src/parallel.rs", src).is_empty());
        let src = "// SAFETY: callers must have verified CPU support.\n\
                   // (And more prose continuing the same block.)\nunsafe fn g() {}\n";
        assert!(lint_file("crates/statevec/src/storage/soa.rs", src).is_empty());
        // A doc block whose SAFETY line is not the last line still counts.
        let src = "/// SAFETY: callers pin the pointee.\n/// More docs.\n\
                   #[inline]\nunsafe fn g() {}\n";
        assert!(lint_file("crates/statevec/src/storage/aos.rs", src).is_empty());
        // Substantive code between the comment and the `unsafe` breaks
        // the adjacency: the second use needs its own justification.
        let src = "// SAFETY: only for the first impl.\nunsafe impl Send for X {}\n\
                   unsafe impl Sync for X {}\n";
        let v = lint_file("crates/util/src/parallel.rs", src);
        assert_eq!(v.len(), 1);
        assert_eq!(v[0].line, 3);
    }

    #[test]
    fn truncating_casts_flagged_in_comm_and_statevec() {
        let src = "fn f(i: u64) -> usize {\n    i as usize\n}\n";
        for rel in ["crates/comm/src/fake.rs", "crates/statevec/src/fake.rs"] {
            let v = lint_file(rel, src);
            assert_eq!(v.len(), 1, "{rel}");
            assert_eq!(v[0].rule, Rule::TruncatingCast);
            assert_eq!(v[0].line, 2);
        }
        let src = "fn f(i: u64) -> u32 { i as u32 }\n";
        assert_eq!(lint_file("crates/comm/src/fake.rs", src).len(), 1);
        // Widening casts and other crates stay untouched.
        assert!(lint_file("crates/comm/src/fake.rs", "fn f(i: u32) -> u64 { i as u64 }\n").is_empty());
        assert!(lint_file("crates/machine/src/fake.rs", "fn f(i: u64) -> usize { i as usize }\n").is_empty());
    }

    #[test]
    fn truncating_casts_exempt_in_tests_and_with_allow_marker() {
        let src = "fn lib() {}\n#[cfg(test)]\nmod tests {\n    fn t(i: u64) -> usize {\n        \
                   i as usize\n    }\n}\n";
        assert!(lint_file("crates/statevec/src/fake.rs", src).is_empty());
        let src = "fn f(i: u64) -> usize {\n    i as usize // qse-lint: allow — bounded above\n}\n";
        assert!(lint_file("crates/comm/src/fake.rs", src).is_empty());
        // Identifiers merely containing the pattern are not casts.
        let src = "fn f(has_usize: bool) -> bool { has_usize }\n";
        assert!(lint_file("crates/comm/src/fake.rs", src).is_empty());
    }

    #[test]
    fn violation_display_is_clickable() {
        let v = Violation {
            file: "crates/comm/src/x.rs".into(),
            line: 12,
            rule: Rule::PanicInLib,
            message: "m".into(),
        };
        assert_eq!(v.to_string(), "crates/comm/src/x.rs:12: [panic-in-lib] m");
    }
}
