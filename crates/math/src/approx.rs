//! Tolerant floating-point comparisons for tests and validation.
//!
//! Statevector simulations accumulate rounding error linearly in circuit
//! depth, so every equality check in the repository goes through these
//! helpers with an explicit tolerance rather than `==`.

use crate::complex::Complex64;

/// Returns true when `|a - b| <= tol`, treating two NaNs as unequal.
#[inline]
pub fn close(a: f64, b: f64, tol: f64) -> bool {
    (a - b).abs() <= tol
}

/// Returns true when both components of two complex numbers are within `tol`.
#[inline]
pub fn complex_close(a: Complex64, b: Complex64, tol: f64) -> bool {
    close(a.re, b.re, tol) && close(a.im, b.im, tol)
}

/// Returns true when two complex slices agree element-wise within `tol`.
pub fn slices_close(a: &[Complex64], b: &[Complex64], tol: f64) -> bool {
    a.len() == b.len() && a.iter().zip(b).all(|(&x, &y)| complex_close(x, y, tol))
}

/// Largest element-wise absolute deviation between two complex slices.
///
/// Returns `f64::INFINITY` when the slices differ in length, so a truncated
/// comparison can never silently pass.
pub fn max_deviation(a: &[Complex64], b: &[Complex64], ) -> f64 {
    if a.len() != b.len() {
        return f64::INFINITY;
    }
    a.iter()
        .zip(b)
        .map(|(&x, &y)| (x - y).abs())
        .fold(0.0, f64::max)
}

/// Panics with a readable message when `|a - b| > tol`.
#[track_caller]
pub fn assert_close(a: f64, b: f64, tol: f64) {
    assert!(
        close(a, b, tol),
        "values differ: {a} vs {b} (|Δ| = {}, tol = {tol})",
        (a - b).abs()
    );
}

/// Panics with a readable message when two complex numbers differ by more
/// than `tol` in either component.
#[track_caller]
pub fn assert_complex_close(a: Complex64, b: Complex64, tol: f64) {
    assert!(
        complex_close(a, b, tol),
        "complex values differ: {a} vs {b} (tol = {tol})"
    );
}

/// Panics when two complex slices disagree, reporting the first offending
/// index to make kernel debugging tractable.
#[track_caller]
pub fn assert_slices_close(a: &[Complex64], b: &[Complex64], tol: f64) {
    assert_eq!(a.len(), b.len(), "slice lengths differ");
    for (i, (&x, &y)) in a.iter().zip(b).enumerate() {
        assert!(
            complex_close(x, y, tol),
            "slices differ at index {i}: {x} vs {y} (tol = {tol})"
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn close_respects_tolerance() {
        assert!(close(1.0, 1.0 + 1e-12, 1e-9));
        assert!(!close(1.0, 1.1, 1e-9));
        assert!(close(1.0, 1.0, 0.0));
    }

    #[test]
    fn nan_never_close() {
        assert!(!close(f64::NAN, f64::NAN, 1.0));
        assert!(!close(f64::NAN, 0.0, 1.0));
    }

    #[test]
    fn complex_close_checks_both_components() {
        let a = Complex64::new(1.0, 2.0);
        assert!(complex_close(a, Complex64::new(1.0 + 1e-12, 2.0), 1e-9));
        assert!(!complex_close(a, Complex64::new(1.0, 2.1), 1e-9));
        assert!(!complex_close(a, Complex64::new(1.1, 2.0), 1e-9));
    }

    #[test]
    fn slices_close_rejects_length_mismatch() {
        let a = vec![Complex64::ONE; 3];
        let b = vec![Complex64::ONE; 4];
        assert!(!slices_close(&a, &b, 1e-9));
        assert_eq!(max_deviation(&a, &b), f64::INFINITY);
    }

    #[test]
    fn max_deviation_finds_worst_element() {
        let a = vec![Complex64::ZERO, Complex64::new(1.0, 0.0)];
        let b = vec![Complex64::ZERO, Complex64::new(0.5, 0.0)];
        assert_close(max_deviation(&a, &b), 0.5, 1e-15);
    }

    #[test]
    #[should_panic(expected = "values differ")]
    fn assert_close_panics_with_message() {
        assert_close(1.0, 2.0, 1e-9);
    }

    #[test]
    #[should_panic(expected = "slices differ at index 1")]
    fn assert_slices_close_reports_index() {
        let a = vec![Complex64::ZERO, Complex64::ONE];
        let b = vec![Complex64::ZERO, Complex64::ZERO];
        assert_slices_close(&a, &b, 1e-9);
    }
}
