//! Foundational numerics for statevector simulation.
//!
//! This crate provides the small, dependency-free building blocks shared by
//! every other layer of the reproduction:
//!
//! * [`Complex64`] — a from-scratch double-precision complex number. QuEST
//!   stores amplitudes as *separate* real and imaginary arrays; the paper's
//!   future-work section proposes switching to an interleaved complex type.
//!   Owning the type (rather than pulling in an external crate) lets the
//!   statevector engine implement both layouts over the same scalar.
//! * [`Matrix2`] / [`Matrix4`] — dense complex matrices for one- and
//!   two-qubit gates, with unitarity checks used by tests and the circuit IR.
//! * [`bits`] — bit-index utilities: the entire distributed-simulation
//!   algebra of the paper (local vs global qubits, pair ranks, amplitude
//!   pairing) is bit manipulation on amplitude indices.
//! * [`approx`] — tolerant floating-point comparison helpers used across the
//!   test suites.

pub mod approx;
pub mod bits;
pub mod complex;
pub mod matrix;

pub use complex::Complex64;
pub use matrix::{Matrix2, Matrix4};
