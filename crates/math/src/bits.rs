//! Bit-index utilities for amplitude addressing.
//!
//! In a statevector of `n` qubits, amplitude index `i` encodes the basis
//! state `|b_{n-1} … b_1 b_0⟩` with qubit `q` stored at bit `q` of `i`
//! (little-endian, QuEST convention). Every algorithm in the paper reduces
//! to manipulating these bits:
//!
//! * a single-qubit gate pairs indices that differ only at bit `q`;
//! * with `2^r` ranks, the top `r` bits of the index select the owning rank
//!   ("global" qubits) and the low `n − r` bits address within a rank
//!   ("local" qubits);
//! * the pair rank for a distributed gate is `rank XOR 2^(q − (n − r))`.

/// Number of amplitudes in an `n`-qubit register (`2^n`).
///
/// Panics in debug builds if `n >= 64`; the simulator never gets near that.
#[inline(always)]
pub const fn dim(n_qubits: u32) -> u64 {
    1u64 << n_qubits
}

/// Extracts bit `q` of `index` as 0 or 1.
#[inline(always)]
pub const fn bit(index: u64, q: u32) -> u64 {
    (index >> q) & 1
}

/// Sets bit `q` of `index` to 1.
#[inline(always)]
pub const fn set_bit(index: u64, q: u32) -> u64 {
    index | (1 << q)
}

/// Clears bit `q` of `index`.
#[inline(always)]
pub const fn clear_bit(index: u64, q: u32) -> u64 {
    index & !(1 << q)
}

/// Flips bit `q` of `index`.
#[inline(always)]
pub const fn flip_bit(index: u64, q: u32) -> u64 {
    index ^ (1 << q)
}

/// Swaps bits `a` and `b` of `index`.
#[inline(always)]
pub const fn swap_bits(index: u64, a: u32, b: u32) -> u64 {
    let x = (bit(index, a) ^ bit(index, b)) & 1;
    index ^ ((x << a) | (x << b))
}

/// Inserts a zero bit at position `q`, shifting higher bits up.
///
/// Maps a "pair-loop" counter `k ∈ [0, 2^{n-1})` to the lower index of the
/// `k`-th amplitude pair of a gate on qubit `q`: iterate `k`, call
/// `insert_zero_bit(k, q)` to get index `i0`, and `i0 | (1 << q)` is its
/// partner. This is how all single-qubit kernels enumerate pairs without
/// branching.
#[inline(always)]
pub const fn insert_zero_bit(index: u64, q: u32) -> u64 {
    let high = (index >> q) << (q + 1);
    let low = index & ((1 << q) - 1);
    high | low
}

/// Inserts two zero bits at positions `q1 < q2` (positions in the *output*).
///
/// Used by two-qubit kernels (SWAP, controlled gates with explicit target
/// pairs) to enumerate the four-amplitude orbits.
#[inline(always)]
pub const fn insert_two_zero_bits(index: u64, q1: u32, q2: u32) -> u64 {
    let (lo, hi) = if q1 < q2 { (q1, q2) } else { (q2, q1) };
    insert_zero_bit(insert_zero_bit(index, lo), hi)
}

/// True when `n` is a power of two (and non-zero).
#[inline(always)]
pub const fn is_pow2(n: u64) -> bool {
    n != 0 && (n & (n - 1)) == 0
}

/// Base-2 logarithm of a power of two.
///
/// # Panics
/// Panics if `n` is not a power of two — rank counts and register sizes in
/// this codebase must always be exact powers of two, as QuEST requires.
#[inline]
pub fn log2_exact(n: u64) -> u32 {
    assert!(is_pow2(n), "{n} is not a power of two");
    n.trailing_zeros()
}

/// Smallest power of two `>= n` (n must be ≥ 1).
#[inline]
pub fn next_pow2(n: u64) -> u64 {
    assert!(n >= 1);
    n.next_power_of_two()
}

/// Reverses the lowest `n_bits` bits of `index` (used by QFT output
/// ordering: the transform produces results in bit-reversed order before
/// its final SWAP network).
#[inline]
pub fn reverse_bits(index: u64, n_bits: u32) -> u64 {
    let mut out = 0u64;
    let mut i = 0;
    while i < n_bits {
        out |= bit(index, i) << (n_bits - 1 - i);
        i += 1;
    }
    out
}

/// Splits an amplitude's global index into `(rank, local_index)` given
/// `local_qubits` low bits per rank.
#[inline(always)]
pub const fn split_index(global: u64, local_qubits: u32) -> (u64, u64) {
    (global >> local_qubits, global & ((1 << local_qubits) - 1))
}

/// Recombines `(rank, local_index)` into a global amplitude index.
#[inline(always)]
pub const fn join_index(rank: u64, local: u64, local_qubits: u32) -> u64 {
    (rank << local_qubits) | local
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dim_is_power() {
        assert_eq!(dim(0), 1);
        assert_eq!(dim(3), 8);
        assert_eq!(dim(44), 1 << 44);
    }

    #[test]
    fn bit_ops() {
        let x = 0b1010u64;
        assert_eq!(bit(x, 0), 0);
        assert_eq!(bit(x, 1), 1);
        assert_eq!(set_bit(x, 0), 0b1011);
        assert_eq!(clear_bit(x, 1), 0b1000);
        assert_eq!(flip_bit(x, 3), 0b0010);
        assert_eq!(flip_bit(x, 0), 0b1011);
    }

    #[test]
    fn swap_bits_cases() {
        assert_eq!(swap_bits(0b01, 0, 1), 0b10);
        assert_eq!(swap_bits(0b11, 0, 1), 0b11);
        assert_eq!(swap_bits(0b00, 0, 1), 0b00);
        assert_eq!(swap_bits(0b100, 2, 0), 0b001);
        // swapping a bit with itself is the identity
        for x in 0..16u64 {
            assert_eq!(swap_bits(x, 2, 2), x);
        }
    }

    #[test]
    fn insert_zero_bit_enumerates_pairs() {
        // For q=1, k=0..4 should produce indices with bit 1 clear: 0,1,4,5
        let got: Vec<u64> = (0..4).map(|k| insert_zero_bit(k, 1)).collect();
        assert_eq!(got, vec![0, 1, 4, 5]);
        // and all partners are distinct and have bit set
        for &i0 in &got {
            assert_eq!(bit(i0, 1), 0);
            assert_eq!(bit(i0 | 2, 1), 1);
        }
    }

    #[test]
    fn insert_zero_bit_at_zero_doubles() {
        for k in 0..8u64 {
            assert_eq!(insert_zero_bit(k, 0), k * 2);
        }
    }

    #[test]
    fn insert_two_zero_bits_order_independent() {
        for k in 0..16u64 {
            assert_eq!(
                insert_two_zero_bits(k, 1, 3),
                insert_two_zero_bits(k, 3, 1)
            );
        }
        // q1=0,q2=1: k -> 4k
        assert_eq!(insert_two_zero_bits(3, 0, 1), 12);
    }

    #[test]
    fn insert_two_zero_bits_produces_clear_bits() {
        for k in 0..64u64 {
            let i = insert_two_zero_bits(k, 2, 5);
            assert_eq!(bit(i, 2), 0);
            assert_eq!(bit(i, 5), 0);
        }
    }

    #[test]
    fn pow2_helpers() {
        assert!(is_pow2(1));
        assert!(is_pow2(64));
        assert!(!is_pow2(0));
        assert!(!is_pow2(12));
        assert_eq!(log2_exact(1), 0);
        assert_eq!(log2_exact(4096), 12);
        assert_eq!(next_pow2(1), 1);
        assert_eq!(next_pow2(3), 4);
        assert_eq!(next_pow2(4), 4);
        assert_eq!(next_pow2(4097), 8192);
    }

    #[test]
    #[should_panic(expected = "not a power of two")]
    fn log2_exact_rejects_non_powers() {
        log2_exact(6);
    }

    #[test]
    fn reverse_bits_cases() {
        assert_eq!(reverse_bits(0b001, 3), 0b100);
        assert_eq!(reverse_bits(0b110, 3), 0b011);
        assert_eq!(reverse_bits(0, 5), 0);
        // involution
        for x in 0..32u64 {
            assert_eq!(reverse_bits(reverse_bits(x, 5), 5), x);
        }
    }

    #[test]
    fn split_join_roundtrip() {
        let local_qubits = 5;
        for global in [0u64, 1, 31, 32, 33, 1023] {
            let (r, l) = split_index(global, local_qubits);
            assert_eq!(join_index(r, l, local_qubits), global);
            assert!(l < 32);
        }
        assert_eq!(split_index(0b10_00011, 5), (0b10, 0b00011));
    }
}
