//! Double-precision complex numbers.
//!
//! A deliberately small implementation covering exactly what gate kernels
//! and unitary algebra need: arithmetic, conjugation, magnitude, polar
//! construction. The struct is `repr(C)` so that a slice of `Complex64`
//! is layout-compatible with interleaved `[re, im, re, im, ...]` storage,
//! which the statevector crate's AoS layout relies on.

use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Div, Mul, MulAssign, Neg, Sub, SubAssign};

/// A complex number with `f64` components.
#[derive(Clone, Copy, PartialEq, Default)]
#[repr(C)]
pub struct Complex64 {
    /// Real part.
    pub re: f64,
    /// Imaginary part.
    pub im: f64,
}

impl Complex64 {
    /// The additive identity, `0 + 0i`.
    pub const ZERO: Complex64 = Complex64 { re: 0.0, im: 0.0 };
    /// The multiplicative identity, `1 + 0i`.
    pub const ONE: Complex64 = Complex64 { re: 1.0, im: 0.0 };
    /// The imaginary unit, `0 + 1i`.
    pub const I: Complex64 = Complex64 { re: 0.0, im: 1.0 };

    /// Creates a complex number from rectangular components.
    #[inline(always)]
    pub const fn new(re: f64, im: f64) -> Self {
        Complex64 { re, im }
    }

    /// Creates a purely real complex number.
    #[inline(always)]
    pub const fn real(re: f64) -> Self {
        Complex64 { re, im: 0.0 }
    }

    /// Creates a complex number from polar form `r·e^{iθ}`.
    #[inline]
    pub fn from_polar(r: f64, theta: f64) -> Self {
        Complex64::new(r * theta.cos(), r * theta.sin())
    }

    /// `e^{iθ}` — a pure phase. Phase gates are diagonal matrices of these.
    #[inline]
    pub fn cis(theta: f64) -> Self {
        Complex64::from_polar(1.0, theta)
    }

    /// Complex conjugate.
    #[inline(always)]
    pub fn conj(self) -> Self {
        Complex64::new(self.re, -self.im)
    }

    /// Squared magnitude `|z|²` — the measurement probability of an amplitude.
    #[inline(always)]
    pub fn norm_sqr(self) -> f64 {
        self.re * self.re + self.im * self.im
    }

    /// Magnitude `|z|`.
    #[inline]
    pub fn abs(self) -> f64 {
        self.norm_sqr().sqrt()
    }

    /// Argument (phase angle) in `(-π, π]`.
    #[inline]
    pub fn arg(self) -> f64 {
        self.im.atan2(self.re)
    }

    /// Multiplicative inverse. Returns non-finite components if `self` is zero.
    #[inline]
    pub fn inv(self) -> Self {
        let d = self.norm_sqr();
        Complex64::new(self.re / d, -self.im / d)
    }

    /// Scales by a real factor.
    #[inline(always)]
    pub fn scale(self, k: f64) -> Self {
        Complex64::new(self.re * k, self.im * k)
    }

    /// Fused multiply-add shape used by gate kernels: `self + a * b`.
    ///
    /// Written out explicitly so the compiler can keep everything in
    /// registers inside the amplitude-pair update loops.
    #[inline(always)]
    pub fn mul_add(self, a: Complex64, b: Complex64) -> Self {
        Complex64::new(
            self.re + a.re * b.re - a.im * b.im,
            self.im + a.re * b.im + a.im * b.re,
        )
    }

    /// True when both components are finite.
    #[inline]
    pub fn is_finite(self) -> bool {
        self.re.is_finite() && self.im.is_finite()
    }
}

impl Add for Complex64 {
    type Output = Complex64;
    #[inline(always)]
    fn add(self, rhs: Complex64) -> Complex64 {
        Complex64::new(self.re + rhs.re, self.im + rhs.im)
    }
}

impl AddAssign for Complex64 {
    #[inline(always)]
    fn add_assign(&mut self, rhs: Complex64) {
        self.re += rhs.re;
        self.im += rhs.im;
    }
}

impl Sub for Complex64 {
    type Output = Complex64;
    #[inline(always)]
    fn sub(self, rhs: Complex64) -> Complex64 {
        Complex64::new(self.re - rhs.re, self.im - rhs.im)
    }
}

impl SubAssign for Complex64 {
    #[inline(always)]
    fn sub_assign(&mut self, rhs: Complex64) {
        self.re -= rhs.re;
        self.im -= rhs.im;
    }
}

impl Mul for Complex64 {
    type Output = Complex64;
    #[inline(always)]
    fn mul(self, rhs: Complex64) -> Complex64 {
        Complex64::new(
            self.re * rhs.re - self.im * rhs.im,
            self.re * rhs.im + self.im * rhs.re,
        )
    }
}

impl MulAssign for Complex64 {
    #[inline(always)]
    fn mul_assign(&mut self, rhs: Complex64) {
        *self = *self * rhs;
    }
}

impl Mul<f64> for Complex64 {
    type Output = Complex64;
    #[inline(always)]
    fn mul(self, rhs: f64) -> Complex64 {
        self.scale(rhs)
    }
}

impl Mul<Complex64> for f64 {
    type Output = Complex64;
    #[inline(always)]
    fn mul(self, rhs: Complex64) -> Complex64 {
        rhs.scale(self)
    }
}

impl Div for Complex64 {
    type Output = Complex64;
    #[inline]
    // z / w computed as z * w^{-1}; the multiplication is intentional.
    #[allow(clippy::suspicious_arithmetic_impl)]
    fn div(self, rhs: Complex64) -> Complex64 {
        self * rhs.inv()
    }
}

impl Div<f64> for Complex64 {
    type Output = Complex64;
    #[inline(always)]
    fn div(self, rhs: f64) -> Complex64 {
        Complex64::new(self.re / rhs, self.im / rhs)
    }
}

impl Neg for Complex64 {
    type Output = Complex64;
    #[inline(always)]
    fn neg(self) -> Complex64 {
        Complex64::new(-self.re, -self.im)
    }
}

impl Sum for Complex64 {
    fn sum<I: Iterator<Item = Complex64>>(iter: I) -> Complex64 {
        iter.fold(Complex64::ZERO, |a, b| a + b)
    }
}

impl From<f64> for Complex64 {
    #[inline]
    fn from(re: f64) -> Self {
        Complex64::real(re)
    }
}

impl fmt::Debug for Complex64 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self)
    }
}

impl fmt::Display for Complex64 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.im >= 0.0 || self.im.is_nan() {
            write!(f, "{}+{}i", self.re, self.im)
        } else {
            write!(f, "{}{}i", self.re, self.im)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::approx::assert_close;

    #[test]
    fn constructors() {
        assert_eq!(Complex64::new(1.0, 2.0).re, 1.0);
        assert_eq!(Complex64::new(1.0, 2.0).im, 2.0);
        assert_eq!(Complex64::real(3.0), Complex64::new(3.0, 0.0));
        assert_eq!(Complex64::from(4.5), Complex64::new(4.5, 0.0));
    }

    #[test]
    fn polar_roundtrip() {
        let z = Complex64::from_polar(2.0, std::f64::consts::FRAC_PI_3);
        assert_close(z.abs(), 2.0, 1e-12);
        assert_close(z.arg(), std::f64::consts::FRAC_PI_3, 1e-12);
    }

    #[test]
    fn cis_unit_circle() {
        for k in 0..16 {
            let theta = k as f64 * 0.5;
            let z = Complex64::cis(theta);
            assert_close(z.norm_sqr(), 1.0, 1e-12);
        }
    }

    #[test]
    fn arithmetic_identities() {
        let a = Complex64::new(1.5, -2.5);
        let b = Complex64::new(-0.5, 3.0);
        assert_eq!(a + b, Complex64::new(1.0, 0.5));
        assert_eq!(a - b, Complex64::new(2.0, -5.5));
        assert_eq!(a + Complex64::ZERO, a);
        assert_eq!(a * Complex64::ONE, a);
        assert_eq!(-a + a, Complex64::ZERO);
    }

    #[test]
    fn multiplication_matches_definition() {
        let a = Complex64::new(2.0, 3.0);
        let b = Complex64::new(-1.0, 4.0);
        // (2+3i)(-1+4i) = -2 + 8i - 3i + 12i² = -14 + 5i
        assert_eq!(a * b, Complex64::new(-14.0, 5.0));
    }

    #[test]
    fn i_squared_is_minus_one() {
        assert_eq!(Complex64::I * Complex64::I, Complex64::new(-1.0, 0.0));
    }

    #[test]
    fn division_inverts_multiplication() {
        let a = Complex64::new(2.0, 3.0);
        let b = Complex64::new(-1.0, 4.0);
        let q = (a * b) / b;
        assert_close(q.re, a.re, 1e-12);
        assert_close(q.im, a.im, 1e-12);
    }

    #[test]
    fn conjugate_properties() {
        let a = Complex64::new(2.0, 3.0);
        assert_eq!(a.conj().conj(), a);
        let p = a * a.conj();
        assert_close(p.re, a.norm_sqr(), 1e-12);
        assert_close(p.im, 0.0, 1e-12);
    }

    #[test]
    fn mul_add_matches_separate_ops() {
        let acc = Complex64::new(0.5, -0.25);
        let a = Complex64::new(1.0, 2.0);
        let b = Complex64::new(-3.0, 0.5);
        let expected = acc + a * b;
        let got = acc.mul_add(a, b);
        assert_close(got.re, expected.re, 1e-12);
        assert_close(got.im, expected.im, 1e-12);
    }

    #[test]
    fn scale_and_real_ops() {
        let a = Complex64::new(1.0, -2.0);
        assert_eq!(a.scale(2.0), Complex64::new(2.0, -4.0));
        assert_eq!(a * 2.0, 2.0 * a);
        assert_eq!(a / 2.0, Complex64::new(0.5, -1.0));
    }

    #[test]
    fn sum_over_iterator() {
        let total: Complex64 = (0..4).map(|k| Complex64::new(k as f64, 1.0)).sum();
        assert_eq!(total, Complex64::new(6.0, 4.0));
    }

    #[test]
    fn display_format() {
        assert_eq!(Complex64::new(1.0, 2.0).to_string(), "1+2i");
        assert_eq!(Complex64::new(1.0, -2.0).to_string(), "1-2i");
    }

    #[test]
    fn finite_detection() {
        assert!(Complex64::new(1.0, 2.0).is_finite());
        assert!(!Complex64::new(f64::NAN, 0.0).is_finite());
        assert!(!Complex64::new(0.0, f64::INFINITY).is_finite());
    }
}
