//! Small dense complex matrices for gate definitions.
//!
//! [`Matrix2`] represents a single-qubit operator; [`Matrix4`] a two-qubit
//! operator. Both carry unitarity checks that the circuit IR uses to reject
//! malformed custom gates, and composition/adjoint operations used to build
//! inverse circuits in tests.

use crate::approx::close;
use crate::complex::Complex64;

/// A 2×2 complex matrix in row-major order: `[[a, b], [c, d]]`.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Matrix2 {
    /// Row-major elements `[a, b, c, d]`.
    pub m: [Complex64; 4],
}

impl Matrix2 {
    /// Builds a matrix from row-major elements.
    pub const fn new(a: Complex64, b: Complex64, c: Complex64, d: Complex64) -> Self {
        Matrix2 { m: [a, b, c, d] }
    }

    /// The 2×2 identity.
    pub const fn identity() -> Self {
        Matrix2::new(
            Complex64::ONE,
            Complex64::ZERO,
            Complex64::ZERO,
            Complex64::ONE,
        )
    }

    /// Builds a diagonal matrix `diag(d0, d1)`.
    pub const fn diagonal(d0: Complex64, d1: Complex64) -> Self {
        Matrix2::new(d0, Complex64::ZERO, Complex64::ZERO, d1)
    }

    /// Element access by (row, col).
    #[inline(always)]
    pub fn at(&self, row: usize, col: usize) -> Complex64 {
        self.m[row * 2 + col]
    }

    /// Matrix product `self · rhs`.
    pub fn matmul(&self, rhs: &Matrix2) -> Matrix2 {
        let mut out = [Complex64::ZERO; 4];
        for r in 0..2 {
            for c in 0..2 {
                out[r * 2 + c] = self.at(r, 0) * rhs.at(0, c) + self.at(r, 1) * rhs.at(1, c);
            }
        }
        Matrix2 { m: out }
    }

    /// Conjugate transpose (adjoint / dagger).
    pub fn adjoint(&self) -> Matrix2 {
        Matrix2::new(
            self.at(0, 0).conj(),
            self.at(1, 0).conj(),
            self.at(0, 1).conj(),
            self.at(1, 1).conj(),
        )
    }

    /// Applies the matrix to an amplitude pair `(a0, a1)`.
    #[inline(always)]
    pub fn apply(&self, a0: Complex64, a1: Complex64) -> (Complex64, Complex64) {
        (
            self.m[0] * a0 + self.m[1] * a1,
            self.m[2] * a0 + self.m[3] * a1,
        )
    }

    /// True when `U†U = I` within `tol` on every element.
    pub fn is_unitary(&self, tol: f64) -> bool {
        let p = self.adjoint().matmul(self);
        let id = Matrix2::identity();
        p.m.iter()
            .zip(id.m.iter())
            .all(|(&x, &y)| close(x.re, y.re, tol) && close(x.im, y.im, tol))
    }

    /// True when both off-diagonal elements are (numerically) zero — the
    /// paper's "fully local" gate class.
    pub fn is_diagonal(&self, tol: f64) -> bool {
        self.m[1].abs() <= tol && self.m[2].abs() <= tol
    }
}

/// A 4×4 complex matrix in row-major order, acting on two qubits.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Matrix4 {
    /// Row-major elements.
    pub m: [Complex64; 16],
}

impl Matrix4 {
    /// Builds a matrix from row-major elements.
    pub const fn new(m: [Complex64; 16]) -> Self {
        Matrix4 { m }
    }

    /// The 4×4 identity.
    pub fn identity() -> Self {
        let mut m = [Complex64::ZERO; 16];
        for i in 0..4 {
            m[i * 4 + i] = Complex64::ONE;
        }
        Matrix4 { m }
    }

    /// Element access by (row, col).
    #[inline(always)]
    pub fn at(&self, row: usize, col: usize) -> Complex64 {
        self.m[row * 4 + col]
    }

    /// Matrix product `self · rhs`.
    pub fn matmul(&self, rhs: &Matrix4) -> Matrix4 {
        let mut out = [Complex64::ZERO; 16];
        for r in 0..4 {
            for c in 0..4 {
                let mut acc = Complex64::ZERO;
                for k in 0..4 {
                    acc += self.at(r, k) * rhs.at(k, c);
                }
                out[r * 4 + c] = acc;
            }
        }
        Matrix4 { m: out }
    }

    /// Conjugate transpose.
    pub fn adjoint(&self) -> Matrix4 {
        let mut out = [Complex64::ZERO; 16];
        for r in 0..4 {
            for c in 0..4 {
                out[c * 4 + r] = self.at(r, c).conj();
            }
        }
        Matrix4 { m: out }
    }

    /// Kronecker product `a ⊗ b` (a acts on the higher qubit).
    pub fn kron(a: &Matrix2, b: &Matrix2) -> Matrix4 {
        let mut m = [Complex64::ZERO; 16];
        for ar in 0..2 {
            for ac in 0..2 {
                for br in 0..2 {
                    for bc in 0..2 {
                        m[(ar * 2 + br) * 4 + (ac * 2 + bc)] = a.at(ar, ac) * b.at(br, bc);
                    }
                }
            }
        }
        Matrix4 { m }
    }

    /// Applies the matrix to a four-amplitude orbit.
    #[inline]
    pub fn apply(&self, a: [Complex64; 4]) -> [Complex64; 4] {
        let mut out = [Complex64::ZERO; 4];
        for (r, slot) in out.iter_mut().enumerate() {
            let mut acc = Complex64::ZERO;
            for (c, &amp) in a.iter().enumerate() {
                acc += self.at(r, c) * amp;
            }
            *slot = acc;
        }
        out
    }

    /// True when `U†U = I` within `tol` on every element.
    pub fn is_unitary(&self, tol: f64) -> bool {
        let p = self.adjoint().matmul(self);
        let id = Matrix4::identity();
        p.m.iter()
            .zip(id.m.iter())
            .all(|(&x, &y)| close(x.re, y.re, tol) && close(x.im, y.im, tol))
    }

    /// True when every off-diagonal element is (numerically) zero.
    pub fn is_diagonal(&self, tol: f64) -> bool {
        (0..4).all(|r| (0..4).all(|c| r == c || self.at(r, c).abs() <= tol))
    }

    /// The SWAP matrix in the `|b a⟩` basis (exchanges `|01⟩` and `|10⟩`).
    pub fn swap() -> Matrix4 {
        let mut m = [Complex64::ZERO; 16];
        m[0] = Complex64::ONE;
        m[6] = Complex64::ONE; // row 1, col 2
        m[9] = Complex64::ONE; // row 2, col 1
        m[15] = Complex64::ONE;
        Matrix4 { m }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::approx::assert_complex_close;
    use std::f64::consts::FRAC_1_SQRT_2;

    fn hadamard() -> Matrix2 {
        let h = Complex64::real(FRAC_1_SQRT_2);
        Matrix2::new(h, h, h, -h)
    }

    #[test]
    fn identity_is_unitary_and_diagonal() {
        assert!(Matrix2::identity().is_unitary(1e-12));
        assert!(Matrix2::identity().is_diagonal(1e-12));
        assert!(Matrix4::identity().is_unitary(1e-12));
    }

    #[test]
    fn hadamard_is_unitary_not_diagonal() {
        assert!(hadamard().is_unitary(1e-12));
        assert!(!hadamard().is_diagonal(1e-12));
    }

    #[test]
    fn hadamard_squared_is_identity() {
        let h = hadamard();
        let h2 = h.matmul(&h);
        for (got, want) in h2.m.iter().zip(Matrix2::identity().m.iter()) {
            assert_complex_close(*got, *want, 1e-12);
        }
    }

    #[test]
    fn apply_matches_matmul_on_basis() {
        let h = hadamard();
        let (a0, a1) = h.apply(Complex64::ONE, Complex64::ZERO);
        assert_complex_close(a0, Complex64::real(FRAC_1_SQRT_2), 1e-12);
        assert_complex_close(a1, Complex64::real(FRAC_1_SQRT_2), 1e-12);
    }

    #[test]
    fn adjoint_reverses_products() {
        let h = hadamard();
        let s = Matrix2::diagonal(Complex64::ONE, Complex64::I);
        let lhs = h.matmul(&s).adjoint();
        let rhs = s.adjoint().matmul(&h.adjoint());
        for (a, b) in lhs.m.iter().zip(rhs.m.iter()) {
            assert_complex_close(*a, *b, 1e-12);
        }
    }

    #[test]
    fn non_unitary_detected() {
        let bad = Matrix2::new(
            Complex64::real(2.0),
            Complex64::ZERO,
            Complex64::ZERO,
            Complex64::ONE,
        );
        assert!(!bad.is_unitary(1e-9));
    }

    #[test]
    fn kron_of_identities_is_identity() {
        let k = Matrix4::kron(&Matrix2::identity(), &Matrix2::identity());
        for (a, b) in k.m.iter().zip(Matrix4::identity().m.iter()) {
            assert_complex_close(*a, *b, 1e-12);
        }
    }

    #[test]
    fn kron_hadamards_is_unitary() {
        let k = Matrix4::kron(&hadamard(), &hadamard());
        assert!(k.is_unitary(1e-12));
        // every element magnitude is 1/2
        for e in k.m.iter() {
            assert!((e.abs() - 0.5).abs() < 1e-12);
        }
    }

    #[test]
    fn matrix4_apply_identity_fixes_vector() {
        let v = [
            Complex64::new(0.1, 0.2),
            Complex64::new(0.3, -0.4),
            Complex64::new(-0.5, 0.6),
            Complex64::new(0.7, 0.8),
        ];
        let got = Matrix4::identity().apply(v);
        for (a, b) in got.iter().zip(v.iter()) {
            assert_complex_close(*a, *b, 1e-12);
        }
    }

    #[test]
    fn swap_matrix_is_unitary_involution() {
        // SWAP in the computational basis |q1 q0>: swaps |01> and |10>.
        let mut m = [Complex64::ZERO; 16];
        m[0] = Complex64::ONE;
        m[6] = Complex64::ONE; // row 1, col 2
        m[9] = Complex64::ONE; // row 2, col 1
        m[15] = Complex64::ONE;
        let swap = Matrix4::new(m);
        assert!(swap.is_unitary(1e-12));
        let sq = swap.matmul(&swap);
        for (a, b) in sq.m.iter().zip(Matrix4::identity().m.iter()) {
            assert_complex_close(*a, *b, 1e-12);
        }
    }
}
