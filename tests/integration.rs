//! Cross-crate integration tests: the full stack from circuit building
//! through distributed execution to measured reports.

use qse::core::scaling::nodes_for;
use qse::math::approx::{assert_close, assert_slices_close};
use qse::prelude::*;
use qse::statevec::reference::ReferenceState;

/// The whole pipeline: transpile, distribute, execute, gather, compare.
#[test]
fn end_to_end_qft_pipeline() {
    let n = 10u32;
    let ranks = 8u64;
    let layout = Layout::new(n, ranks);
    let built_in = qft(n);
    let blocked = cache_blocked_qft(n, default_split(n, layout.local_qubits()));

    for basis in [0u64, 1, 513, 1023] {
        let mut want = ReferenceState::basis_state(n, basis);
        want.run(&built_in);

        for circuit in [&built_in, &blocked] {
            for cfg in [
                SimConfig::default_for(ranks),
                SimConfig::fast_for(ranks),
                {
                    let mut c = SimConfig::fast_for(ranks);
                    c.half_exchange_swaps = true;
                    c.fuse_diagonals = Some(2);
                    c
                },
            ] {
                let run = ThreadClusterExecutor::run(circuit, &cfg, basis, true);
                assert_slices_close(
                    &run.state.expect("gathered"),
                    want.amplitudes(),
                    1e-9,
                );
            }
        }
    }
}

/// The general transpiler's output, executed distributed, equals the
/// original circuit up to the tracked layout permutation — and restoring
/// the layout makes the states literally equal.
#[test]
fn transpiler_layout_restoration_round_trip() {
    use qse::circuit::random::{random_circuit, GatePool};
    use qse::statevec::storage::SoaStorage;
    use qse::statevec::DistributedState;
    let n = 8u32;
    let ranks = 4u64;
    let layout = Layout::new(n, ranks);
    let cfg = SimConfig::default_for(ranks);
    for seed in 0..3 {
        let circuit = random_circuit(n, 70, GatePool::Full, seed);
        let transpiled = cache_block(&circuit, layout.local_qubits());
        // The restored plan ends with exactly one batched permutation —
        // one exchange regardless of how many transpositions the layout
        // accumulated.
        let plan = transpiled.with_layout_restored();
        assert_eq!(plan.permute_count(), 1);

        let want = ReferenceState::simulate(&circuit);
        let gathered = Universe::new(ranks as usize).run(|comm| {
            let mut st: DistributedState<SoaStorage> =
                DistributedState::basis_state(comm, n, 0, cfg.to_dist_config());
            st.run_plan(&plan).expect("plan run");
            st.gather().expect("gather")
        });
        let state = gathered
            .into_iter()
            .flatten()
            .next()
            .expect("rank 0 state");
        assert_slices_close(&state, want.amplitudes(), 1e-9);
    }
}

/// Comm-avoiding transpilation through the executor front door: both
/// strategies reproduce the untranspiled amplitudes while measurably
/// exchanging fewer bytes.
#[test]
fn comm_avoiding_transpile_preserves_state_and_cuts_traffic() {
    let n = 10u32;
    let ranks = 8u64;
    let circuit = qft(n);
    let mut want = ReferenceState::basis_state(n, 37);
    want.run(&circuit);

    let off = ThreadClusterExecutor::run(&circuit, &SimConfig::default_for(ranks), 37, true);
    assert_slices_close(&off.state.expect("gathered"), want.amplitudes(), 1e-9);

    for mode in [TranspileMode::Greedy, TranspileMode::Beam] {
        let mut cfg = SimConfig::default_for(ranks);
        cfg.transpile = mode;
        let run = ThreadClusterExecutor::run(&circuit, &cfg, 37, true);
        assert_slices_close(&run.state.expect("gathered"), want.amplitudes(), 1e-9);
        assert!(
            run.profiled.bytes_exchanged < off.profiled.bytes_exchanged,
            "{mode:?} must cut exchange traffic: {} !< {}",
            run.profiled.bytes_exchanged,
            off.profiled.bytes_exchanged
        );
    }
}

/// Measured traffic equals the classifier's static prediction, for both
/// exchange regimes — the model's inputs are exact, not estimated.
#[test]
fn measured_traffic_matches_static_analysis() {
    let n = 9u32;
    let ranks = 8u64;
    let layout = Layout::new(n, ranks);
    let circuit = qft(n);
    let summary = comm_summary(&circuit, &layout);

    let run = ThreadClusterExecutor::run(&circuit, &SimConfig::default_for(ranks), 0, false);
    // Every distributed gate sends `bytes_full_exchange` per rank.
    assert_eq!(
        run.profiled.bytes_sent,
        summary.bytes_full_exchange * ranks
    );

    let mut cfg = SimConfig::default_for(ranks);
    cfg.half_exchange_swaps = true;
    let run_half = ThreadClusterExecutor::run(&circuit, &cfg, 0, false);
    assert_eq!(
        run_half.profiled.bytes_sent,
        summary.bytes_half_exchange_swaps * ranks
    );
}

/// QFT → inverse QFT is the identity on the distributed engine.
#[test]
fn distributed_qft_inverse_identity() {
    let n = 9u32;
    let circuit = qft(n).then(&inverse_qft(n));
    let basis = 0b101010101u64;
    let run = ThreadClusterExecutor::run(&circuit, &SimConfig::fast_for(8), basis, true);
    let state = run.state.expect("gathered");
    assert_close(state[basis as usize].re, 1.0, 1e-9);
    let norm: f64 = state.iter().map(|a| a.norm_sqr()).sum();
    assert_close(norm, 1.0, 1e-9);
}

/// Model-layer sanity across the whole fig 2 grid: every feasible
/// (qubits, node-kind) pair produces a finite, positive estimate, and
/// runtime grows with register size within a series.
#[test]
fn model_grid_is_well_formed() {
    let machine = archer2();
    for kind in [NodeKind::Standard, NodeKind::HighMem] {
        let mut last: Option<(u64, f64)> = None;
        for n in 33..=44u32 {
            let Some(nodes) = nodes_for(&machine, kind, n) else {
                continue;
            };
            let mut cfg = SimConfig::default_for(nodes);
            cfg.node_kind = kind;
            let est = ModelExecutor::new(&machine).run(&qft(n), &cfg);
            assert!(est.runtime_s.is_finite() && est.runtime_s > 0.0);
            assert!(est.total_energy_j() > 0.0);
            assert!(est.cu > 0.0);
            // Runtime grows with register size within the multi-node
            // regime. The single-node → multi-node boundary is exempt:
            // a lone node runs with no distributed gates at all (the
            // paper singles those runs out in fig 2 for the same reason).
            if let Some((prev_nodes, prev_runtime)) = last {
                if prev_nodes > 1 {
                    assert!(
                        est.runtime_s > prev_runtime,
                        "{kind:?} runtime must grow with qubits at {n}"
                    );
                }
            }
            last = Some((nodes, est.runtime_s));
        }
    }
}

/// Grover's search end to end: the marked state's probability after the
/// optimal iteration count is near 1, identically on the local engine,
/// the distributed engine and the reference.
#[test]
fn grover_finds_the_marked_state() {
    use qse::circuit::algorithms::{grover, grover_optimal_iterations};
    let n = 7u32;
    let marked = 0b1011010u64;
    let c = grover(n, marked, grover_optimal_iterations(n));

    let local = LocalExecutor::run(&c);
    let p_local = local.amplitude(marked).norm_sqr();
    assert!(p_local > 0.99, "local p = {p_local}");

    let run = ThreadClusterExecutor::run(&c, &SimConfig::fast_for(8), 0, true);
    let state = run.state.expect("gathered");
    let p_dist = state[marked as usize].norm_sqr();
    assert!((p_dist - p_local).abs() < 1e-9);

    let reference = ReferenceState::simulate(&c);
    assert_slices_close(&local.to_vec(), reference.amplitudes(), 1e-9);
}

/// The general two-qubit unitary runs correctly in every distribution
/// regime: both qubits local, one global, and both global (the engine's
/// SWAP decomposition).
#[test]
fn unitary2_all_distribution_regimes() {
    use qse::circuit::random::random_unitary2;
    let mut rng = qse::util::rng::StdRng::seed_from_u64(17);
    let n = 6u32;
    let ranks = 8u64; // locals: 0..2, globals: 3..5
    for (a, b) in [(0u32, 2u32), (1, 4), (4, 1), (3, 5), (5, 3)] {
        let mut c = Circuit::new(n);
        // Non-trivial input state first.
        for q in 0..n {
            c.h(q);
            c.phase(q, 0.2 * q as f64 + 0.1);
        }
        c.push(Gate::Unitary2 {
            a,
            b,
            matrix: random_unitary2(&mut rng),
        });
        let want = ReferenceState::simulate(&c);
        for cfg in [SimConfig::default_for(ranks), SimConfig::fast_for(ranks)] {
            let run = ThreadClusterExecutor::run(&c, &cfg, 0, true);
            assert_slices_close(&run.state.unwrap(), want.amplitudes(), 1e-9);
        }
    }
}

/// Multi-controlled phases are fully local (diagonal) even when every
/// qubit is global — zero bytes on the wire.
#[test]
fn mcphase_never_communicates() {
    let n = 6u32;
    let mut c = Circuit::new(n);
    c.push(Gate::MCPhase {
        qubits: vec![3, 4, 5],
        theta: 1.0,
    });
    let run = ThreadClusterExecutor::run(&c, &SimConfig::default_for(8), 0b111000, true);
    assert_eq!(run.profiled.bytes_sent, 0);
    let want = ReferenceState::simulate(&{
        let mut c2 = Circuit::new(n);
        // same circuit from the same basis state
        c2.push(Gate::MCPhase {
            qubits: vec![3, 4, 5],
            theta: 1.0,
        });
        c2
    });
    let _ = want; // phase on a basis state: just check norm and phase
    let state = run.state.unwrap();
    let amp = state[0b111000];
    assert!((amp.arg() - 1.0).abs() < 1e-12, "phase {}", amp.arg());
}

/// The umbrella prelude exposes a working surface.
#[test]
fn prelude_surface_compiles_and_runs() {
    let mut c = Circuit::new(3);
    c.h(0).cnot(0, 1).swap(1, 2);
    let s = LocalExecutor::run(&c);
    assert_close(s.norm_sqr(), 1.0, 1e-12);
    let out = Universe::new(2).run(|comm| comm.rank());
    assert_eq!(out, vec![0, 1]);
}
