//! Property-based tests (proptest) on the core invariants.
//!
//! Strategy-generated circuits, layouts and storage contents; each
//! property encodes an invariant the paper's correctness rests on.

use proptest::prelude::*;
use qse::math::approx::{max_deviation, slices_close};
use qse::math::bits;
use qse::math::Complex64;
use qse::prelude::*;
use qse::statevec::reference::ReferenceState;
use qse::statevec::storage::{AmpStorage, AosStorage, SoaStorage};

/// A strategy for gates over `n` qubits.
fn gate_strategy(n: u32) -> impl Strategy<Value = Gate> {
    let q = 0..n;
    let theta = -3.1f64..3.1;
    prop_oneof![
        q.clone().prop_map(Gate::H),
        q.clone().prop_map(Gate::X),
        q.clone().prop_map(Gate::Y),
        q.clone().prop_map(Gate::Z),
        q.clone().prop_map(Gate::S),
        q.clone().prop_map(Gate::T),
        (q.clone(), theta.clone()).prop_map(|(target, theta)| Gate::Phase { target, theta }),
        (q.clone(), theta.clone()).prop_map(|(target, theta)| Gate::Rx { target, theta }),
        (0..n, 0..n - 1).prop_map(move |(a, mut b)| {
            if b >= a {
                b += 1;
            }
            Gate::CNot {
                control: a,
                target: b,
            }
        }),
        (0..n, 0..n - 1, theta.clone()).prop_map(move |(a, mut b, theta)| {
            if b >= a {
                b += 1;
            }
            Gate::CPhase { a, b, theta }
        }),
        (0..n, 0..n - 1).prop_map(move |(a, mut b)| {
            if b >= a {
                b += 1;
            }
            Gate::Swap(a, b)
        }),
        (0..n, 0..n - 1, theta.clone()).prop_map(move |(a, mut b, theta)| {
            if b >= a {
                b += 1;
            }
            Gate::MCPhase {
                qubits: vec![a, b],
                theta,
            }
        }),
        (0..n, 0..n - 1, any::<u64>()).prop_map(move |(c, mut t, seed)| {
            if t >= c {
                t += 1;
            }
            use rand::SeedableRng;
            let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
            Gate::CUnitary {
                control: c,
                target: t,
                matrix: qse::circuit::random::random_unitary1(&mut rng),
            }
        }),
        (0..n, 0..n - 1, any::<u64>()).prop_map(move |(a, mut b, seed)| {
            if b >= a {
                b += 1;
            }
            use rand::SeedableRng;
            let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
            Gate::Unitary2 {
                a,
                b,
                matrix: qse::circuit::random::random_unitary2(&mut rng),
            }
        }),
    ]
}

fn circuit_strategy(n: u32, max_gates: usize) -> impl Strategy<Value = Circuit> {
    prop::collection::vec(gate_strategy(n), 1..max_gates).prop_map(move |gates| {
        let mut c = Circuit::new(n);
        for g in gates {
            c.push(g);
        }
        c
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Unitarity: every circuit preserves the norm.
    #[test]
    fn circuits_preserve_norm(c in circuit_strategy(6, 40)) {
        let s = LocalExecutor::run(&c);
        prop_assert!((s.norm_sqr() - 1.0).abs() < 1e-9);
    }

    /// Invertibility: C then C⁻¹ restores the initial basis state.
    #[test]
    fn inverse_restores_state(c in circuit_strategy(5, 30), basis in 0u64..32) {
        let full = c.then(&c.inverse());
        let mut s = ReferenceState::basis_state(5, basis);
        s.run(&full);
        prop_assert!((s.amplitudes()[basis as usize].re - 1.0).abs() < 1e-9);
        prop_assert!((s.norm_sqr() - 1.0).abs() < 1e-9);
    }

    /// The production engine agrees with the naïve reference on every
    /// circuit.
    #[test]
    fn engine_matches_reference(c in circuit_strategy(6, 40)) {
        let got = LocalExecutor::run(&c);
        let want = ReferenceState::simulate(&c);
        prop_assert!(slices_close(&got.to_vec(), want.amplitudes(), 1e-9),
            "max dev {}", max_deviation(&got.to_vec(), want.amplitudes()));
    }

    /// Both storage layouts produce identical amplitudes.
    #[test]
    fn layouts_agree(c in circuit_strategy(6, 40)) {
        let mut soa: SingleState<SoaStorage> = SingleState::zero_state(6);
        let mut aos: SingleState<AosStorage> = SingleState::zero_state(6);
        soa.run(&c);
        aos.run(&c);
        prop_assert!(slices_close(&soa.to_vec(), &aos.to_vec(), 1e-12));
    }

    /// Distribution is transparent: 4-rank execution equals the
    /// reference, for any circuit and any exchange configuration.
    #[test]
    fn distribution_is_transparent(
        c in circuit_strategy(6, 25),
        non_blocking in any::<bool>(),
        half in any::<bool>(),
        chunk in prop_oneof![Just(64usize), Just(1024), Just(1 << 20)],
    ) {
        let mut cfg = SimConfig::default_for(4);
        cfg.non_blocking = non_blocking;
        cfg.half_exchange_swaps = half;
        cfg.max_message_bytes = chunk;
        let run = ThreadClusterExecutor::run(&c, &cfg, 0, true);
        let want = ReferenceState::simulate(&c);
        prop_assert!(slices_close(&run.state.unwrap(), want.amplitudes(), 1e-9));
    }

    /// Diagonal sinking preserves semantics and never shrinks the
    /// fusable gate count.
    #[test]
    fn sinking_is_safe(c in circuit_strategy(6, 40)) {
        use qse::circuit::transpile::scheduling::{fusable_gate_count, sink_diagonals};
        let s = sink_diagonals(&c);
        let want = ReferenceState::simulate(&c);
        let got = ReferenceState::simulate(&s);
        prop_assert!(slices_close(got.amplitudes(), want.amplitudes(), 1e-9));
        prop_assert!(fusable_gate_count(&s, 2) >= fusable_gate_count(&c, 2));
    }

    /// Fusion never changes semantics.
    #[test]
    fn fusion_is_semantics_preserving(c in circuit_strategy(6, 40), min_fuse in 1usize..6) {
        let plain = LocalExecutor::run(&c);
        let fused = LocalExecutor::run_fused(&c, 0, min_fuse);
        prop_assert!(slices_close(&plain.to_vec(), &fused.to_vec(), 1e-9));
    }

    /// The cache-blocking transpiler preserves the operator up to its
    /// reported layout permutation.
    #[test]
    fn transpiler_contract(c in circuit_strategy(6, 30), local in 2u32..6) {
        let t = cache_block(&c, local);
        let orig = ReferenceState::simulate(&c);
        let got = ReferenceState::simulate(&t.circuit);
        // got[π(i)] == orig[i]
        for (i, amp) in orig.amplitudes().iter().enumerate() {
            let j = t.layout.permute_index(i as u64) as usize;
            let d = (got.amplitudes()[j] - *amp).abs();
            prop_assert!(d < 1e-9, "index {i}→{j} dev {d}");
        }
    }

    /// Every cache-blocked QFT split is the same operator.
    #[test]
    fn cache_blocked_qft_split_invariance(n in 2u32..9, basis_seed in any::<u64>()) {
        let basis = basis_seed % (1u64 << n);
        let mut want = ReferenceState::basis_state(n, basis);
        want.run(&qft(n));
        for split in 0..=n {
            let mut got = ReferenceState::basis_state(n, basis);
            got.run(&cache_blocked_qft(n, split));
            prop_assert!(slices_close(got.amplitudes(), want.amplitudes(), 1e-9));
        }
    }

    /// Storage half-bit marshalling round-trips for arbitrary contents.
    #[test]
    fn half_bit_round_trip(
        values in prop::collection::vec((-1.0f64..1.0, -1.0f64..1.0), 16),
        q in 0u32..4,
    ) {
        let mut s = SoaStorage::zeros(16);
        for (i, (re, im)) in values.iter().enumerate() {
            s.set(i, Complex64::new(*re, *im));
        }
        let h0 = s.extract_half_bit(q, 0);
        let h1 = s.extract_half_bit(q, 1);
        let mut t = SoaStorage::zeros(16);
        t.write_half_bit(q, 0, &h0);
        t.write_half_bit(q, 1, &h1);
        for i in 0..16 {
            prop_assert_eq!(t.get(i), s.get(i));
        }
    }

    /// Bit utilities: insert_zero_bit enumerates exactly the indices with
    /// bit q clear, in order.
    #[test]
    fn insert_zero_bit_enumeration(q in 0u32..8) {
        let expected: Vec<u64> = (0..256u64).filter(|i| bits::bit(*i, q) == 0).collect();
        let got: Vec<u64> = (0..128u64).map(|k| bits::insert_zero_bit(k, q)).collect();
        prop_assert_eq!(got, expected);
    }

    /// Permutation index mapping is a bijection consistent with compose.
    #[test]
    fn permutation_bijection(seed in any::<u64>()) {
        use qse::circuit::Permutation;
        // build a pseudo-random permutation of 6 labels
        let mut map: Vec<u32> = (0..6).collect();
        let mut s = seed;
        for i in (1..map.len()).rev() {
            s = s.wrapping_mul(6364136223846793005).wrapping_add(1);
            map.swap(i, (s % (i as u64 + 1)) as usize);
        }
        let p = Permutation::from_map(map);
        let mut seen = std::collections::HashSet::new();
        for i in 0..64u64 {
            prop_assert!(seen.insert(p.permute_index(i)));
        }
        let inv = p.inverse();
        for i in 0..64u64 {
            prop_assert_eq!(inv.permute_index(p.permute_index(i)), i);
        }
    }
}
