//! Property-based tests on the core invariants.
//!
//! Seeded in-tree property loops (`qse::util::check`): each case draws a
//! random circuit or input from a deterministic seed stream, and a
//! failure report names the `(seed, size)` pair that reproduces it.
//! Each property encodes an invariant the paper's correctness rests on.

use qse::circuit::random::{random_circuit, GatePool};
use qse::math::approx::{max_deviation, slices_close};
use qse::math::bits;
use qse::math::Complex64;
use qse::prelude::*;
use qse::statevec::reference::ReferenceState;
use qse::statevec::storage::{AmpStorage, AosStorage, SoaStorage};
use qse::util::check::{check, check_with_size};
use qse::util::rng::Rng;

/// Draws a circuit over `n` qubits with `size` gates from the full pool.
fn draw_circuit(rng: &mut impl Rng, n: u32, size: usize) -> Circuit {
    random_circuit(n, size.max(1), GatePool::Full, rng.next_u64())
}

/// Unitarity: every circuit preserves the norm.
#[test]
fn circuits_preserve_norm() {
    check_with_size(48, 40, |rng, size| {
        let c = draw_circuit(rng, 6, size);
        let s = LocalExecutor::run(&c);
        assert!((s.norm_sqr() - 1.0).abs() < 1e-9);
    });
}

/// Invertibility: C then C⁻¹ restores the initial basis state.
#[test]
fn inverse_restores_state() {
    check_with_size(48, 30, |rng, size| {
        let c = draw_circuit(rng, 5, size);
        let basis = rng.random_range(0u64..32);
        let full = c.then(&c.inverse());
        let mut s = ReferenceState::basis_state(5, basis);
        s.run(&full);
        assert!((s.amplitudes()[basis as usize].re - 1.0).abs() < 1e-9);
        assert!((s.norm_sqr() - 1.0).abs() < 1e-9);
    });
}

/// The production engine agrees with the naïve reference on every
/// circuit.
#[test]
fn engine_matches_reference() {
    check_with_size(48, 40, |rng, size| {
        let c = draw_circuit(rng, 6, size);
        let got = LocalExecutor::run(&c);
        let want = ReferenceState::simulate(&c);
        assert!(
            slices_close(&got.to_vec(), want.amplitudes(), 1e-9),
            "max dev {}",
            max_deviation(&got.to_vec(), want.amplitudes())
        );
    });
}

/// Both storage layouts produce identical amplitudes.
#[test]
fn layouts_agree() {
    check_with_size(48, 40, |rng, size| {
        let c = draw_circuit(rng, 6, size);
        let mut soa: SingleState<SoaStorage> = SingleState::zero_state(6);
        let mut aos: SingleState<AosStorage> = SingleState::zero_state(6);
        soa.run(&c);
        aos.run(&c);
        assert!(slices_close(&soa.to_vec(), &aos.to_vec(), 1e-12));
    });
}

/// Distribution is transparent: 4-rank execution equals the reference,
/// for any circuit and any exchange configuration.
#[test]
fn distribution_is_transparent() {
    check_with_size(48, 25, |rng, size| {
        let c = draw_circuit(rng, 6, size);
        let mut cfg = SimConfig::default_for(4);
        cfg.non_blocking = rng.random_bool(0.5);
        cfg.half_exchange_swaps = rng.random_bool(0.5);
        cfg.max_message_bytes = [64usize, 1024, 1 << 20][rng.random_range(0..3usize)];
        let run = ThreadClusterExecutor::run(&c, &cfg, 0, true);
        let want = ReferenceState::simulate(&c);
        assert!(slices_close(&run.state.unwrap(), want.amplitudes(), 1e-9));
    });
}

/// Diagonal sinking preserves semantics and never shrinks the fusable
/// gate count.
#[test]
fn sinking_is_safe() {
    use qse::circuit::transpile::scheduling::{fusable_gate_count, sink_diagonals};
    check_with_size(48, 40, |rng, size| {
        let c = draw_circuit(rng, 6, size);
        let s = sink_diagonals(&c);
        let want = ReferenceState::simulate(&c);
        let got = ReferenceState::simulate(&s);
        assert!(slices_close(got.amplitudes(), want.amplitudes(), 1e-9));
        assert!(fusable_gate_count(&s, 2) >= fusable_gate_count(&c, 2));
    });
}

/// Fusion never changes semantics.
#[test]
fn fusion_is_semantics_preserving() {
    check_with_size(48, 40, |rng, size| {
        let c = draw_circuit(rng, 6, size);
        let min_fuse = rng.random_range(1usize..6);
        let plain = LocalExecutor::run(&c);
        let fused = LocalExecutor::run_fused(&c, 0, min_fuse);
        assert!(slices_close(&plain.to_vec(), &fused.to_vec(), 1e-9));
    });
}

/// The cache-blocking transpiler preserves the operator up to its
/// reported layout permutation.
#[test]
fn transpiler_contract() {
    check_with_size(48, 30, |rng, size| {
        let c = draw_circuit(rng, 6, size);
        let local = rng.random_range(2u32..6);
        let t = cache_block(&c, local);
        let orig = ReferenceState::simulate(&c);
        let got = ReferenceState::simulate(&t.circuit);
        // got[π(i)] == orig[i]
        for (i, amp) in orig.amplitudes().iter().enumerate() {
            let j = t.layout.permute_index(i as u64) as usize;
            let d = (got.amplitudes()[j] - *amp).abs();
            assert!(d < 1e-9, "index {i}→{j} dev {d}");
        }
    });
}

/// Every cache-blocked QFT split is the same operator.
#[test]
fn cache_blocked_qft_split_invariance() {
    check(48, |rng| {
        let n = rng.random_range(2u32..9);
        let basis = rng.next_u64() % (1u64 << n);
        let mut want = ReferenceState::basis_state(n, basis);
        want.run(&qft(n));
        for split in 0..=n {
            let mut got = ReferenceState::basis_state(n, basis);
            got.run(&cache_blocked_qft(n, split));
            assert!(slices_close(got.amplitudes(), want.amplitudes(), 1e-9));
        }
    });
}

/// Storage half-bit marshalling round-trips for arbitrary contents.
#[test]
fn half_bit_round_trip() {
    check(48, |rng| {
        let q = rng.random_range(0u32..4);
        let mut s = SoaStorage::zeros(16);
        for i in 0..16 {
            let re = rng.random_range(-1.0..1.0);
            let im = rng.random_range(-1.0..1.0);
            s.set(i, Complex64::new(re, im));
        }
        let h0 = s.extract_half_bit(q, 0);
        let h1 = s.extract_half_bit(q, 1);
        let mut t = SoaStorage::zeros(16);
        t.write_half_bit(q, 0, &h0);
        t.write_half_bit(q, 1, &h1);
        for i in 0..16 {
            assert_eq!(t.get(i), s.get(i));
        }
    });
}

/// Bit utilities: insert_zero_bit enumerates exactly the indices with
/// bit q clear, in order.
#[test]
fn insert_zero_bit_enumeration() {
    check(48, |rng| {
        let q = rng.random_range(0u32..8);
        let expected: Vec<u64> = (0..256u64).filter(|i| bits::bit(*i, q) == 0).collect();
        let got: Vec<u64> = (0..128u64).map(|k| bits::insert_zero_bit(k, q)).collect();
        assert_eq!(got, expected);
    });
}

/// Permutation index mapping is a bijection consistent with compose.
#[test]
fn permutation_bijection() {
    use qse::circuit::Permutation;
    check(48, |rng| {
        // build a pseudo-random permutation of 6 labels
        let mut map: Vec<u32> = (0..6).collect();
        for i in (1..map.len()).rev() {
            map.swap(i, rng.random_range(0..i + 1));
        }
        let p = Permutation::from_map(map);
        let mut seen = std::collections::HashSet::new();
        for i in 0..64u64 {
            assert!(seen.insert(p.permute_index(i)));
        }
        let inv = p.inverse();
        for i in 0..64u64 {
            assert_eq!(inv.permute_index(p.permute_index(i)), i);
        }
    });
}
