//! End-to-end algorithm tests: each builder from `qse::circuit::algorithms`
//! run through the engines and checked against its textbook behaviour.

use qse::circuit::algorithms::{
    bernstein_vazirani, ghz, layered_ansatz, qpe, read_phase_estimate,
};
use qse::math::approx::assert_close;
use qse::prelude::*;
use qse::statevec::expectation::{pauli_expectation, Pauli};
use qse::statevec::storage::AmpStorage;

/// Bernstein–Vazirani recovers the hidden string deterministically: the
/// final state is exactly |secret⟩.
#[test]
fn bernstein_vazirani_recovers_secret() {
    for secret in [0u64, 1, 0b101101, 0b111111, 0b010010] {
        let n = 6;
        let state = LocalExecutor::run(&bernstein_vazirani(n, secret));
        assert_close(state.amplitude(secret).norm_sqr(), 1.0, 1e-9);
    }
}

/// BV also works distributed, where the Hadamard layers hit global qubits.
#[test]
fn bernstein_vazirani_distributed() {
    let secret = 0b110101u64;
    let c = bernstein_vazirani(6, secret);
    let run = ThreadClusterExecutor::run(&c, &SimConfig::default_for(4), 0, true);
    let state = run.state.expect("gathered");
    assert_close(state[secret as usize].norm_sqr(), 1.0, 1e-9);
}

/// QPE recovers exactly-representable phases with certainty, and
/// `read_phase_estimate` undoes the big-endian bit reversal.
#[test]
fn qpe_exact_phase_recovery() {
    let t = 6u32;
    for k in [1u64, 13, 31, 63] {
        let phi = k as f64 / (1u64 << t) as f64;
        let state = LocalExecutor::run(&qpe(t, phi));
        let (best, p) = (0..state.storage().len() as u64)
            .map(|i| (i, state.amplitude(i).norm_sqr()))
            .max_by(|a, b| a.1.total_cmp(&b.1))
            .unwrap();
        assert!(p > 0.999, "phi={phi}: p={p}");
        assert_close(read_phase_estimate(best, t), phi, 1e-12);
    }
}

/// QPE on a non-representable phase concentrates within ±2^-t.
#[test]
fn qpe_approximate_phase() {
    let t = 7u32;
    let phi = 0.31234;
    let state = LocalExecutor::run(&qpe(t, phi));
    let (best, p) = (0..state.storage().len() as u64)
        .map(|i| (i, state.amplitude(i).norm_sqr()))
        .max_by(|a, b| a.1.total_cmp(&b.1))
        .unwrap();
    assert!(p > 0.4, "p={p}"); // textbook ≥ 4/π² ≈ 0.405
    let est = read_phase_estimate(best, t);
    assert!((est - phi).abs() < 1.0 / (1u64 << t) as f64);
}

/// GHZ correlations survive distribution: ⟨Z_iZ_j⟩ = 1 with ⟨Z_i⟩ = 0,
/// measured on the gathered state.
#[test]
fn ghz_distributed_correlations() {
    let n = 8u32;
    let run = ThreadClusterExecutor::run(&ghz(n), &SimConfig::fast_for(8), 0, true);
    let state = run.state.expect("gathered");
    // Only |0…0⟩ and |1…1⟩ are populated, equally.
    let all_ones = (1u64 << n) - 1;
    assert_close(state[0].norm_sqr(), 0.5, 1e-9);
    assert_close(state[all_ones as usize].norm_sqr(), 0.5, 1e-9);
    let populated = state.iter().filter(|a| a.norm_sqr() > 1e-12).count();
    assert_eq!(populated, 2);
}

/// Pauli expectations through the observable API agree with hand-derived
/// values on the ansatz workload, and the ansatz preserves the norm.
#[test]
fn layered_ansatz_observables() {
    let c = layered_ansatz(6, 4, 11);
    let state = LocalExecutor::run(&c);
    assert_close(state.norm_sqr(), 1.0, 1e-9);
    for q in 0..6 {
        let z = pauli_expectation(&state, &[(q, Pauli::Z)]);
        let x = pauli_expectation(&state, &[(q, Pauli::X)]);
        let y = pauli_expectation(&state, &[(q, Pauli::Y)]);
        // Single-qubit Bloch vector length is bounded by 1.
        let len = (z * z + x * x + y * y).sqrt();
        assert!(len <= 1.0 + 1e-9, "qubit {q}: bloch length {len}");
    }
}

/// Checkpoint round-trip composes with execution: save mid-circuit,
/// restore, continue, and match the uninterrupted run.
#[test]
fn checkpoint_resume_matches_uninterrupted_run() {
    use qse::statevec::checkpoint::{load, save};
    use qse::statevec::storage::SoaStorage;
    let n = 8u32;
    let first = qft(n);
    let second = inverse_qft(n);

    // Uninterrupted.
    let full = first.then(&second);
    let want = LocalExecutor::run(&full);

    // Interrupted at the midpoint.
    let mid = LocalExecutor::run(&first);
    let bytes = save(&mid);
    let mut resumed: qse::statevec::SingleState<SoaStorage> = load(&bytes).unwrap();
    resumed.run(&second);

    qse::math::approx::assert_slices_close(&resumed.to_vec(), &want.to_vec(), 1e-12);
}
