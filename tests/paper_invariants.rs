//! The paper's quantitative claims, as assertions against the calibrated
//! model — the table/figure regeneration in test form. Tolerances are
//! generous (shape, not absolute numbers) except where the value was a
//! direct calibration anchor.

use qse::core::scaling::{nodes_for, nodes_for_half_buffers};
use qse::prelude::*;
use qse::statevec::reference::ReferenceState;

fn model(circuit: &Circuit, cfg: &SimConfig) -> qse::machine::perf::RunEstimate {
    let machine = archer2();
    ModelExecutor::new(&machine).run(circuit, cfg)
}

/// Table 1 anchors (38 qubits, 64 nodes, per-gate).
#[test]
fn table1_per_gate_anchors() {
    let per_gate = |q: u32, fast: bool| {
        let c = qse::circuit::benchmarks::hadamard_benchmark(38, q, 50);
        let cfg = if fast {
            SimConfig::fast_for(64)
        } else {
            SimConfig::default_for(64)
        };
        let est = model(&c, &cfg);
        (est.runtime_s / 50.0, est.total_energy_j() / 50.0)
    };
    let (t29, e29) = per_gate(29, false);
    assert!((t29 - 0.5).abs() < 0.05, "q29 {t29}");
    assert!((e29 - 15.3e3).abs() < 2e3, "q29 energy {e29}");
    let (t32b, e32b) = per_gate(32, false);
    let (t32n, e32n) = per_gate(32, true);
    assert!((t32b - 9.63).abs() < 0.6, "q32 blocking {t32b}");
    assert!((t32n - 8.82).abs() < 0.6, "q32 non-blocking {t32n}");
    // Twenty-fold jump from local to distributed (paper: "twenty-fold
    // increase in runtime").
    assert!(t32b / t29 > 15.0 && t32b / t29 < 25.0);
    assert!(e32b > 10.0 * e29);
    assert!(e32n < e32b);
}

/// Figure 2's scaling shape: "QFT runtimes scale linearly, due to the
/// number of distributed gates rising linearly" (§3.1) — each extra
/// qubit doubles the node count (keeping per-node work flat) and adds
/// two distributed gates, so the runtime *increment* is roughly constant.
#[test]
fn fig2_runtime_scales_linearly() {
    let machine = archer2();
    let mut runtimes = Vec::new();
    for n in 36..=42u32 {
        let nodes = nodes_for(&machine, NodeKind::Standard, n).unwrap();
        runtimes.push(model(&qft(n), &SimConfig::default_for(nodes)).runtime_s);
    }
    let increments: Vec<f64> = runtimes.windows(2).map(|w| w[1] - w[0]).collect();
    let mean = increments.iter().sum::<f64>() / increments.len() as f64;
    assert!(mean > 0.0);
    for (i, d) in increments.iter().enumerate() {
        assert!(
            (d - mean).abs() < 0.3 * mean,
            "increment {i} = {d}, mean {mean}: not linear"
        );
    }
}

/// Figure 3's bands: standard-high vs the default.
#[test]
fn fig3_standard_high_band() {
    let machine = archer2();
    for n in [36u32, 40, 44] {
        let nodes = nodes_for(&machine, NodeKind::Standard, n).unwrap();
        let base = model(&qft(n), &SimConfig::default_for(nodes));
        let mut cfg = SimConfig::default_for(nodes);
        cfg.frequency = CpuFrequency::High;
        let high = model(&qft(n), &cfg);
        let speedup = 1.0 - high.runtime_s / base.runtime_s;
        let extra_energy = high.total_energy_j() / base.total_energy_j() - 1.0;
        // Paper: "consistently 5 % to 10 % faster … around 25 % more energy".
        assert!((0.02..0.12).contains(&speedup), "{n}: speedup {speedup}");
        assert!((0.10..0.35).contains(&extra_energy), "{n}: energy {extra_energy}");
    }
}

/// Figure 3 / §3.1: high-memory setups are slower but under 2×, and cost
/// fewer CUs.
#[test]
fn fig3_highmem_band() {
    let machine = archer2();
    for n in [36u32, 38, 40] {
        let std_nodes = nodes_for(&machine, NodeKind::Standard, n).unwrap();
        let hm_nodes = nodes_for(&machine, NodeKind::HighMem, n).unwrap();
        assert_eq!(hm_nodes * 2, std_nodes);
        let std = model(&qft(n), &SimConfig::default_for(std_nodes));
        let mut cfg = SimConfig::default_for(hm_nodes);
        cfg.node_kind = NodeKind::HighMem;
        let hm = model(&qft(n), &cfg);
        assert!(hm.runtime_s > std.runtime_s);
        assert!(hm.runtime_s < 2.0 * std.runtime_s);
        assert!(hm.cu < std.cu);
    }
}

/// Figure 5's three bars, in order.
#[test]
fn fig5_profile_ordering() {
    let worst = model(
        &qse::circuit::benchmarks::hadamard_benchmark(38, 37, 50),
        &SimConfig::default_for(64),
    );
    let built_in = model(&qft(38), &SimConfig::default_for(64));
    let blocked = model(&cache_blocked_qft(38, 30), &SimConfig::fast_for(64));
    assert!(worst.comm_fraction() > 0.85);
    assert!((0.35..0.55).contains(&built_in.comm_fraction()));
    assert!((0.18..0.38).contains(&blocked.comm_fraction()));
    assert!(blocked.comm_fraction() < built_in.comm_fraction());
    // Local remainder splits roughly 2:1 memory:compute.
    let ratio = built_in.memory_fraction() / built_in.compute_fraction();
    assert!((1.4..2.7).contains(&ratio), "mem:comp {ratio}");
}

/// Table 2's headline: the fast variant wins by roughly a third in time
/// and energy at 43–44 qubits.
#[test]
fn table2_fast_vs_built_in() {
    let machine = archer2();
    for n in [43u32, 44] {
        let nodes = nodes_for(&machine, NodeKind::Standard, n).unwrap();
        let local = n - nodes.trailing_zeros();
        let built_in = model(&qft(n), &SimConfig::default_for(nodes));
        let fast = model(
            &cache_blocked_qft(n, default_split(n, local)),
            &SimConfig::fast_for(nodes),
        );
        let dt = 1.0 - fast.runtime_s / built_in.runtime_s;
        let de = 1.0 - fast.total_energy_j() / built_in.total_energy_j();
        // Paper: 35 % / 40 % faster and 30 % / 35 % less energy.
        assert!((0.25..0.50).contains(&dt), "{n}: Δtime {dt}");
        assert!((0.20..0.45).contains(&de), "{n}: Δenergy {de}");
    }
}

/// §4 future work: half-exchange SWAPs halve the fast variant's
/// remaining communication and unlock 45 qubits.
#[test]
fn future_work_half_exchange_and_45_qubits() {
    let machine = archer2();
    assert_eq!(nodes_for(&machine, NodeKind::Standard, 45), None);
    assert_eq!(
        nodes_for_half_buffers(&machine, NodeKind::Standard, 45),
        Some(4096)
    );
    let c = cache_blocked_qft(44, default_split(44, 32));
    let full = model(&c, &SimConfig::fast_for(4096));
    let mut cfg = SimConfig::fast_for(4096);
    cfg.half_exchange_swaps = true;
    let half = model(&c, &cfg);
    assert_eq!(half.breakdown.comm_bytes * 2, full.breakdown.comm_bytes);
    assert!(half.runtime_s < full.runtime_s);
}

/// The QFT semantics the whole study rests on, verified exactly: the fig
/// 1a circuit computes the DFT (big-endian convention) and fig 1b is the
/// same operator.
#[test]
fn qft_semantics_exact() {
    let n = 6u32;
    let dim = 1u64 << n;
    for x in [0u64, 3, 31, dim - 1] {
        let mut s = ReferenceState::basis_state(n, x);
        s.run(&qft(n));
        for k in 0..dim {
            let phase = 2.0 * std::f64::consts::PI
                * (qse::math::bits::reverse_bits(x, n) as f64)
                * (qse::math::bits::reverse_bits(k, n) as f64)
                / dim as f64;
            let expect = Complex64::cis(phase).scale(1.0 / (dim as f64).sqrt());
            let got = s.amplitudes()[k as usize];
            assert!((got - expect).abs() < 1e-9, "x={x} k={k}");
        }
    }
}
